//! Lake-wide join-index cache with memory governance.
//!
//! Discovery evaluates many join paths that funnel through the same few
//! satellite tables: every hop that joins against table `T` on column `c`
//! needs the same key → row-group index, yet the uncached kernel rebuilds it
//! (grouping + fingerprinting every duplicate row) per call. The
//! [`LakeIndexCache`] builds each `(table, join column)` index **once**,
//! thread-safely, and serves it to every subsequent join — the per-seed work
//! then degrades to one hash probe plus a [`mix_u64`](crate::stable_hash::mix_u64)
//! per duplicate candidate.
//!
//! ## Memory governance
//!
//! Resident index bytes are bounded by an optional **byte budget**
//! ([`LakeIndexCache::set_budget`], defaulted from `AUTOFEAT_CACHE_BUDGET`
//! at construction, unbounded when unset). Two mechanisms enforce it:
//!
//! * **Fit-or-deny admission** — a freshly built index is retained only if
//!   it fits the remaining budget; otherwise the build is handed to the
//!   caller as a transient index (counted in
//!   [`CacheStats::rejections`]) and the cache keeps nothing. Admission
//!   never evicts: under the uniform cyclic access pattern of a discovery
//!   sweep, evict-to-admit degenerates to cache thrash (every entry evicted
//!   just before its reuse — zero hits at *any* budget below the working
//!   set), while pinning the first fitting subset serves that subset on
//!   every revisit.
//! * **LRU eviction on budget shrink** — [`set_budget`](LakeIndexCache::set_budget)
//!   with a budget below current residency evicts coldest-first (per-slot
//!   last-touch clocks, bumped on every probe) until residency fits.
//!
//! Eviction can never invalidate an in-flight join: entries hand out
//! `Arc<JoinIndex>` clones, so an evicted index stays alive until its last
//! borrower drops it — the cache merely stops *retaining* it. And because
//! cached and uncached execution share one kernel (see *Determinism* below),
//! denial/eviction can change only *when indexes are rebuilt*, never what
//! any join produces: budgeted, unbounded, and uncached runs are
//! bit-identical by construction.
//!
//! Accounting is **ownership-accurate**: resident bytes are registered only
//! for indexes the slot map actually retains (admitted entries), and
//! deducted on eviction. Transient builds — admission denials, and the
//! degraded path that hands out unowned entries when the governor lock is
//! poisoned — never touch residency, so stats cannot report phantom memory.
//! Dictionary-coded indexes (built when the keyed table carries a
//! [`KeyDict`](crate::keydict::KeyDict)) follow the same rule: the dict is
//! owned by the lake table — charged to
//! [`Table::key_meta_bytes`](crate::table::Table::key_meta_bytes), shared by
//! every index over that column — so `JoinIndex::resident_bytes` counts only
//! the per-index group and duplicate arrays the cache actually retains.
//!
//! ## Resilience
//!
//! Two fault classes degrade gracefully, and both are *counted*, never
//! silently swallowed: a poisoned governor lock falls back to transient
//! entries ([`CacheStats::lock_recoveries`]), and a panic inside an index
//! build is isolated with `catch_unwind` — the caller gets a structured
//! [`DataError::BuildPanicked`], the empty slot is dropped so later touches
//! retry, and the event lands in [`CacheStats::build_panics`]. Cold builds
//! also poll the ambient [`control`](crate::control) before starting, so a
//! cancelled or deadline-expired run never pays for an index it cannot use.
//!
//! ## Concurrency
//!
//! The governor (slot map + accounting) sits behind an [`RwLock`]; each slot
//! holds an `Arc<OnceLock<…>>` cell so that index **construction happens
//! outside the map lock** — two threads racing on the same cold entry
//! serialize only on that entry's `OnceLock` (one builds and counts a miss,
//! the other waits and counts a hit), while joins against other tables
//! proceed untouched. The hit path is allocation-free: probes hash the
//! `(table, column)` pair with the repo's FNV [`StableHasher`] and verify
//! within the bucket by `&str` comparison — no key `String`s are built
//! after a slot's first insertion.
//!
//! ## Determinism
//!
//! Cached and uncached execution are bit-identical by construction:
//! [`join::left_join_normalized`](crate::join::left_join_normalized) is a
//! wrapper that builds a transient index and calls
//! [`join::left_join_with_index`](crate::join::left_join_with_index), the
//! same function the cache path calls with a memoized index. Fingerprints
//! are seed-independent, so one index serves every seed.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::{Duration, Instant};

use autofeat_obs as obs;

use crate::column::Column;
use crate::control;
use crate::error::{DataError, Result};
use crate::join::{left_join_with_index, JoinIndex, JoinOutput};
use crate::stable_hash::StableHasher;
use crate::table::Table;

/// Environment variable consulted by [`LakeIndexCache::new`] for a default
/// byte budget. Accepts plain bytes or a binary-suffixed size (`K`/`M`/`G`),
/// e.g. `AUTOFEAT_CACHE_BUDGET=24M`. Unset, empty, or unparsable values
/// leave the cache unbounded.
pub const CACHE_BUDGET_ENV: &str = "AUTOFEAT_CACHE_BUDGET";

/// Parse a byte-budget string: plain bytes (`"1048576"`) or a number with a
/// case-insensitive binary suffix (`"512K"`, `"24M"`, `"2G"`, optionally
/// `"24MiB"`/`"24MB"`). Returns `None` for empty or malformed input.
pub fn parse_budget_bytes(s: &str) -> Option<u64> {
    let s = s.trim();
    if s.is_empty() {
        return None;
    }
    let digits_end = s.find(|c: char| !c.is_ascii_digit()).unwrap_or(s.len());
    let (num, suffix) = s.split_at(digits_end);
    let base: u64 = num.parse().ok()?;
    let mult: u64 = match suffix.trim().to_ascii_lowercase().as_str() {
        "" | "b" => 1,
        "k" | "kb" | "kib" => 1 << 10,
        "m" | "mb" | "mib" => 1 << 20,
        "g" | "gb" | "gib" => 1 << 30,
        _ => return None,
    };
    base.checked_mul(mult)
}

/// The byte budget requested via [`CACHE_BUDGET_ENV`], if any.
pub fn env_cache_budget() -> Option<u64> {
    std::env::var(CACHE_BUDGET_ENV)
        .ok()
        .as_deref()
        .and_then(parse_budget_bytes)
}

/// A point-in-time snapshot of [`LakeIndexCache`] counters, for
/// observability (discovery results, health reports, benchmarks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Joins served from an already-built index.
    pub hits: u64,
    /// Joins that had to build the index first (equals distinct cold
    /// entries touched, absent racing builders; denied entries rebuild —
    /// and re-count — on every touch).
    pub misses: u64,
    /// Total wall time spent building indexes.
    pub build_time: Duration,
    /// Approximate heap footprint of all *retained* indexes, in bytes.
    /// Transient builds (admission denials, degraded-mode entries) are
    /// never counted.
    pub resident_bytes: u64,
    /// Number of `(table, join column)` indexes resident.
    pub entries: u64,
    /// Indexes evicted by a budget shrink ([`LakeIndexCache::set_budget`]).
    pub evictions: u64,
    /// Total bytes released by those evictions.
    pub evicted_bytes: u64,
    /// Builds denied retention because they did not fit the budget.
    pub rejections: u64,
    /// High-water mark of `resident_bytes` since the budget was last
    /// (re)applied — [`set_budget`](LakeIndexCache::set_budget) starts a new
    /// peak epoch, so a budgeted run reports its own peak.
    pub peak_resident_bytes: u64,
    /// The byte budget in force, `None` when unbounded.
    pub budget_bytes: Option<u64>,
    /// Operations that found the governor lock poisoned and degraded
    /// (transient entries, skipped accounting) instead of failing. Always
    /// zero in a healthy process; nonzero means a thread panicked while
    /// holding the governor.
    pub lock_recoveries: u64,
    /// Index builds that panicked. Each was isolated (`catch_unwind`) and
    /// surfaced to its caller as a structured error; the empty slot was
    /// dropped so later touches retry.
    pub build_panics: u64,
    /// Slots dropped by targeted invalidation
    /// ([`LakeIndexCache::invalidate_table`]) — the lake-mutation path
    /// removes exactly the mutated table's entries, never flushing the rest.
    pub invalidations: u64,
    /// Total resident bytes released by those invalidations.
    pub invalidated_bytes: u64,
}

impl CacheStats {
    /// Counter delta `self − earlier` for the monotonic counters (hits,
    /// misses, build time, evictions, evicted bytes, rejections, lock
    /// recoveries, build panics); resident bytes, entries, peak, and budget
    /// stay absolute, since they describe current occupancy rather than
    /// cumulative work.
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            build_time: self.build_time.saturating_sub(earlier.build_time),
            resident_bytes: self.resident_bytes,
            entries: self.entries,
            evictions: self.evictions.saturating_sub(earlier.evictions),
            evicted_bytes: self.evicted_bytes.saturating_sub(earlier.evicted_bytes),
            rejections: self.rejections.saturating_sub(earlier.rejections),
            peak_resident_bytes: self.peak_resident_bytes,
            budget_bytes: self.budget_bytes,
            lock_recoveries: self.lock_recoveries.saturating_sub(earlier.lock_recoveries),
            build_panics: self.build_panics.saturating_sub(earlier.build_panics),
            invalidations: self.invalidations.saturating_sub(earlier.invalidations),
            invalidated_bytes: self.invalidated_bytes.saturating_sub(earlier.invalidated_bytes),
        }
    }
}

/// Per-request cache activity counters, for attribution when several
/// requests share one [`LakeIndexCache`].
///
/// A before/after [`CacheStats::since`] delta misattributes work the moment
/// two runs overlap: request A's hits land in request B's delta. Instead,
/// each run creates a recorder, installs it ambiently
/// ([`install_recorder`]; fan-out workers re-install their spawner's, like
/// the ambient [`crate::control`]), and the cache mirrors every counter
/// bump into the recorder of the thread doing the work — so a hit is
/// credited to exactly the request that probed, a build to the request
/// whose worker won the build race, an eviction to the request whose
/// budget application triggered it. Summing all concurrent recorders
/// reproduces the cache's global counter delta exactly.
#[derive(Debug, Default)]
pub struct CacheRecorder {
    hits: AtomicU64,
    misses: AtomicU64,
    build_nanos: AtomicU64,
    evictions: AtomicU64,
    evicted_bytes: AtomicU64,
    rejections: AtomicU64,
    lock_recoveries: AtomicU64,
    build_panics: AtomicU64,
    invalidations: AtomicU64,
    invalidated_bytes: AtomicU64,
}

impl CacheRecorder {
    /// A fresh recorder, ready to share with fan-out workers.
    pub fn new() -> Arc<CacheRecorder> {
        Arc::new(CacheRecorder::default())
    }

    /// Admission rejections attributed to this request so far (the
    /// degradation ladder's cache-pressure signal).
    pub fn rejections(&self) -> u64 {
        self.rejections.load(Ordering::Relaxed)
    }

    /// This request's activity as a [`CacheStats`]: the monotonic counters
    /// are **this request's own work**; the occupancy fields
    /// (resident/entries/peak/budget) are read from `cache`, since
    /// occupancy describes the shared structure, not any one request.
    pub fn attributed(&self, cache: &LakeIndexCache) -> CacheStats {
        let occupancy = cache.stats();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            build_time: Duration::from_nanos(self.build_nanos.load(Ordering::Relaxed)),
            resident_bytes: occupancy.resident_bytes,
            entries: occupancy.entries,
            evictions: self.evictions.load(Ordering::Relaxed),
            evicted_bytes: self.evicted_bytes.load(Ordering::Relaxed),
            rejections: self.rejections.load(Ordering::Relaxed),
            peak_resident_bytes: occupancy.peak_resident_bytes,
            budget_bytes: occupancy.budget_bytes,
            lock_recoveries: self.lock_recoveries.load(Ordering::Relaxed),
            build_panics: self.build_panics.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            invalidated_bytes: self.invalidated_bytes.load(Ordering::Relaxed),
        }
    }
}

thread_local! {
    static AMBIENT_RECORDER: std::cell::RefCell<Option<Arc<CacheRecorder>>> =
        const { std::cell::RefCell::new(None) };
}

/// Install `rec` as this thread's ambient cache recorder for the guard's
/// lifetime (the previous recorder is restored on drop, also on panic).
pub fn install_recorder(rec: Option<Arc<CacheRecorder>>) -> RecorderGuard {
    let prev = AMBIENT_RECORDER.with(|r| std::mem::replace(&mut *r.borrow_mut(), rec));
    RecorderGuard(Some(prev))
}

/// RAII guard from [`install_recorder`].
pub struct RecorderGuard(Option<Option<Arc<CacheRecorder>>>);

impl Drop for RecorderGuard {
    fn drop(&mut self) {
        if let Some(prev) = self.0.take() {
            AMBIENT_RECORDER.with(|r| *r.borrow_mut() = prev);
        }
    }
}

/// The cache recorder currently installed on this thread, if any.
pub fn ambient_recorder() -> Option<Arc<CacheRecorder>> {
    AMBIENT_RECORDER.with(|r| r.borrow().clone())
}

/// Mirror one counter bump into the ambient recorder, if installed. One
/// thread-local read when no request is recording.
fn record(f: impl FnOnce(&CacheRecorder)) {
    AMBIENT_RECORDER.with(|r| {
        if let Some(rec) = r.borrow().as_deref() {
            f(rec);
        }
    });
}

type Entry = Arc<OnceLock<Arc<JoinIndex>>>;

/// One cached `(table, join column)` pair. `bytes` is zero until the built
/// index is admitted; only admitted bytes are part of governor residency.
#[derive(Debug)]
struct Slot {
    table: String,
    column: String,
    /// The key column this slot's index was (or will be) built from — a
    /// cheap `Arc` clone held for *data-version identity*: probes verify
    /// [`Column::same_data`] so a re-added table with the same name but
    /// different contents gets a distinct slot instead of being served a
    /// stale index (and in-flight requests over the old snapshot keep
    /// hitting the old version's slot until it is invalidated).
    key_col: Column,
    cell: Entry,
    /// Logical last-touch time (global probe clock); bumped on every probe,
    /// read by LRU eviction. Atomic so hits can touch it under the governor
    /// *read* lock.
    last_touch: AtomicU64,
    /// Admitted footprint in bytes (0 = built-but-unadmitted or unbuilt).
    /// Mutated only under the governor write lock.
    bytes: u64,
}

/// FNV bucket map: slot key hash → slots verifying to distinct pairs. The
/// hash is a pure function of the strings, so probes never allocate.
type SlotMap = HashMap<u64, Vec<Slot>, BuildHasherDefault<StableHasher>>;

fn slot_hash(table: &str, column: &str) -> u64 {
    let mut h = StableHasher::new();
    h.write(table.as_bytes());
    h.write_u8(0xff); // field terminator: ("ab","c") ≠ ("a","bc")
    h.write(column.as_bytes());
    h.finish()
}

/// Mutable cache state: the slot map plus every accounting register that
/// must move atomically with it (residency, peak, eviction/rejection
/// tallies, the budget itself).
#[derive(Debug, Default)]
struct Governor {
    buckets: SlotMap,
    resident: u64,
    peak_resident: u64,
    evictions: u64,
    evicted_bytes: u64,
    rejections: u64,
    invalidations: u64,
    invalidated_bytes: u64,
    budget: Option<u64>,
}

impl Governor {
    /// Evict the coldest admitted slot. Returns `false` when nothing is
    /// admitted (residency 0).
    fn evict_coldest(&mut self) -> bool {
        let mut victim: Option<(u64, usize, u64)> = None; // (bucket, idx, touch)
        for (&h, bucket) in &self.buckets {
            for (i, s) in bucket.iter().enumerate() {
                if s.bytes == 0 {
                    continue;
                }
                let touch = s.last_touch.load(Ordering::Relaxed);
                if victim.is_none_or(|(_, _, t)| touch < t) {
                    victim = Some((h, i, touch));
                }
            }
        }
        let Some((h, i, _)) = victim else { return false };
        let bucket = self.buckets.get_mut(&h).expect("victim bucket exists");
        let slot = bucket.swap_remove(i);
        if bucket.is_empty() {
            self.buckets.remove(&h);
        }
        self.resident -= slot.bytes;
        self.evictions += 1;
        self.evicted_bytes += slot.bytes;
        obs::incr("cache.evictions");
        obs::add("cache.evicted_bytes", slot.bytes);
        // Evictions run on the thread applying the budget, so the ambient
        // recorder attributes them to the request that caused them.
        record(|r| {
            r.evictions.fetch_add(1, Ordering::Relaxed);
            r.evicted_bytes.fetch_add(slot.bytes, Ordering::Relaxed);
        });
        // The slot's `cell` (and the Arc'd index inside) drops here; any
        // in-flight join still holding a clone keeps the index alive.
        true
    }

    /// Raise the resident high-water mark, mirroring growth into the
    /// `cache.peak_resident_bytes` trace counter (its per-run total is the
    /// peak's growth over the run; with the budget applied at run start the
    /// epoch base is the post-eviction residency).
    fn note_peak(&mut self) {
        if self.resident > self.peak_resident {
            obs::add("cache.peak_resident_bytes", self.resident - self.peak_resident);
            self.peak_resident = self.resident;
        }
    }
}

/// Thread-safe, lazily-populated, budget-governed cache of [`JoinIndex`]es
/// keyed by `(table name, join column)`.
///
/// Owned (behind an `Arc`) by the search context so that discovery, path
/// materialization, and every baseline share one set of indexes per lake.
/// Indexes are immutable once built; retention is bounded by the byte
/// budget (see the module docs — fit-or-deny admission, LRU eviction on
/// budget shrink, unbounded by default).
#[derive(Debug)]
pub struct LakeIndexCache {
    gov: RwLock<Governor>,
    /// Global probe clock feeding the slots' last-touch stamps.
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    build_nanos: AtomicU64,
    /// Poisoned-governor fallbacks taken (see [`CacheStats::lock_recoveries`]).
    lock_recoveries: AtomicU64,
    /// Isolated index-build panics (see [`CacheStats::build_panics`]).
    build_panics: AtomicU64,
}

impl Default for LakeIndexCache {
    /// Same as [`LakeIndexCache::new`]: the budget defaults from
    /// [`CACHE_BUDGET_ENV`].
    fn default() -> LakeIndexCache {
        LakeIndexCache::new()
    }
}

impl LakeIndexCache {
    /// Create an empty cache whose budget defaults from
    /// [`CACHE_BUDGET_ENV`] (unbounded when unset). The env default means
    /// every consumer of a fresh context — discovery, materialization, the
    /// baselines — honors an operator-imposed budget without any config
    /// plumbing.
    pub fn new() -> LakeIndexCache {
        LakeIndexCache::with_budget(env_cache_budget())
    }

    /// Create an empty cache with an explicit byte budget (`None` =
    /// unbounded), ignoring the environment.
    pub fn with_budget(budget: Option<u64>) -> LakeIndexCache {
        LakeIndexCache {
            gov: RwLock::new(Governor { budget, ..Governor::default() }),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            build_nanos: AtomicU64::new(0),
            lock_recoveries: AtomicU64::new(0),
            build_panics: AtomicU64::new(0),
        }
    }

    /// Record one poisoned-lock fallback: degraded mode is tolerated, but
    /// never silent.
    fn note_lock_recovery(&self) {
        self.lock_recoveries.fetch_add(1, Ordering::Relaxed);
        obs::incr("cache.lock_recoveries");
        record(|r| {
            r.lock_recoveries.fetch_add(1, Ordering::Relaxed);
        });
    }

    /// (Re)apply a byte budget. When the new budget is below current
    /// residency, coldest slots (least-recent last touch) are evicted until
    /// residency fits. Also starts a new `peak_resident_bytes` epoch at the
    /// post-eviction residency, so stats taken after a run report the peak
    /// *under this budget*. In-flight joins are unaffected: they hold
    /// `Arc` clones of any index this call evicts.
    pub fn set_budget(&self, budget: Option<u64>) {
        let Ok(mut gov) = self.gov.write() else {
            self.note_lock_recovery();
            return;
        };
        gov.budget = budget;
        if let Some(b) = budget {
            while gov.resident > b {
                if !gov.evict_coldest() {
                    break;
                }
            }
        }
        gov.peak_resident = gov.resident;
    }

    /// The byte budget in force (`None` = unbounded).
    pub fn budget(&self) -> Option<u64> {
        match self.gov.read() {
            Ok(g) => g.budget,
            Err(_) => {
                self.note_lock_recovery();
                None
            }
        }
    }

    /// The join index for `(table, column)`, building it on first use.
    ///
    /// Errors only when `column` is missing from `table` (resolved before
    /// any locking, so a bad column name never poisons an entry). The first
    /// caller per entry builds and counts a **miss**; every other caller —
    /// including threads that waited on a racing build — counts a **hit**.
    /// Every miss corresponds to exactly one index build (denied entries
    /// are re-created, rebuilt, and re-counted on later touches).
    pub fn get_or_build(&self, table: &Table, column: &str) -> Result<Arc<JoinIndex>> {
        let key_col = table.column(column)?;
        // Cooperative deadline/cancel poll before potentially expensive
        // build work; a cold build is the costliest single step a join
        // takes, so this is a natural interrupt point.
        if let Some(reason) = control::ambient_interrupted() {
            return Err(DataError::Interrupted(reason));
        }

        let entry = self.probe(table.name(), column, key_col);
        let mut built = false;
        // Panic isolation: a poisoned table must fail *this* entry, not
        // abort the run. `OnceLock::get_or_init` leaves the cell
        // uninitialized when the initializer panics, so the empty slot is
        // dropped and later touches retry cleanly.
        let build_result = catch_unwind(AssertUnwindSafe(|| {
            Arc::clone(entry.get_or_init(|| {
                built = true;
                let _span = obs::span("index_build");
                let t0 = Instant::now();
                let index = Arc::new(JoinIndex::build(table, key_col));
                let elapsed = t0.elapsed();
                obs::record_secs("cache.index_build_secs", elapsed.as_secs_f64());
                self.build_nanos
                    .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
                record(|r| {
                    r.build_nanos.fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
                });
                index
            }))
        }));
        let index = match build_result {
            Ok(index) => index,
            Err(payload) => {
                self.forget_unbuilt(table.name(), column, &entry);
                self.build_panics.fetch_add(1, Ordering::Relaxed);
                obs::incr("cache.build_panics");
                record(|r| {
                    r.build_panics.fetch_add(1, Ordering::Relaxed);
                });
                return Err(DataError::BuildPanicked {
                    table: table.name().to_string(),
                    message: crate::parallel::payload_message(payload),
                });
            }
        };
        // Exactly one miss per cold entry even when builders race: the
        // OnceLock winner counts the miss, waiters count hits — so the
        // hit/miss totals are invariant across worker thread counts.
        if built {
            self.misses.fetch_add(1, Ordering::Relaxed);
            obs::incr("cache.misses");
            record(|r| {
                r.misses.fetch_add(1, Ordering::Relaxed);
            });
            self.admit(table.name(), column, &entry, &index);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
            obs::incr("cache.hits");
            record(|r| {
                r.hits.fetch_add(1, Ordering::Relaxed);
            });
        }
        Ok(index)
    }

    /// Drop the slot owning `entry` if its cell is still unbuilt — the
    /// cleanup path after an isolated build panic, so the poisoned entry
    /// does not pin an empty slot forever and a later touch can retry.
    fn forget_unbuilt(&self, table: &str, column: &str, entry: &Entry) {
        let h = slot_hash(table, column);
        let Ok(mut gov) = self.gov.write() else {
            self.note_lock_recovery();
            return;
        };
        let Some(bucket) = gov.buckets.get_mut(&h) else { return };
        if let Some(i) = bucket.iter().position(|s| {
            s.table == table
                && s.column == column
                && Arc::ptr_eq(&s.cell, entry)
                && s.cell.get().is_none()
        }) {
            bucket.swap_remove(i);
            if bucket.is_empty() {
                gov.buckets.remove(&h);
            }
        }
    }

    /// Cached equivalent of
    /// [`join::left_join_normalized`](crate::join::left_join_normalized):
    /// resolves (or builds) the index for `(right, right_key)` and performs
    /// the indexed join. Bit-identical to the uncached call.
    pub fn left_join_normalized(
        &self,
        left: &Table,
        right: &Table,
        left_key: &str,
        right_key: &str,
        prefix: &str,
        seed: u64,
    ) -> Result<JoinOutput> {
        let index = self.get_or_build(right, right_key)?;
        left_join_with_index(left, right, &index, left_key, prefix, seed)
    }

    /// Drop every slot belonging to `table` — built, denied-then-recreated,
    /// or still unbuilt — releasing their resident bytes. The lake-mutation
    /// path (`add_table`/`remove_table`) calls this so a mutated table's
    /// stale indexes are released promptly while every other table's
    /// entries stay warm; a full flush is never needed. In-flight joins
    /// holding `Arc` clones of an invalidated index are unaffected.
    ///
    /// Returns the number of slots removed.
    pub fn invalidate_table(&self, table: &str) -> u64 {
        let Ok(mut gov) = self.gov.write() else {
            self.note_lock_recovery();
            return 0;
        };
        let mut removed = 0u64;
        let mut bytes = 0u64;
        gov.buckets.retain(|_, bucket| {
            bucket.retain(|s| {
                if s.table == table {
                    removed += 1;
                    bytes += s.bytes;
                    false
                } else {
                    true
                }
            });
            !bucket.is_empty()
        });
        if removed > 0 {
            gov.resident -= bytes;
            gov.invalidations += removed;
            gov.invalidated_bytes += bytes;
            obs::add("cache.invalidations", removed);
            obs::add("cache.invalidated_bytes", bytes);
            record(|r| {
                r.invalidations.fetch_add(removed, Ordering::Relaxed);
                r.invalidated_bytes.fetch_add(bytes, Ordering::Relaxed);
            });
        }
        removed
    }

    /// Point-in-time counter snapshot.
    pub fn stats(&self) -> CacheStats {
        let gov_snapshot = self.gov.read().map(|g| {
            let built = g
                .buckets
                .values()
                .flatten()
                .filter(|s| s.cell.get().is_some())
                .count() as u64;
            (
                built,
                g.resident,
                g.evictions,
                g.evicted_bytes,
                g.rejections,
                g.peak_resident,
                g.budget,
                g.invalidations,
                g.invalidated_bytes,
            )
        });
        let (
            entries,
            resident,
            evictions,
            evicted_bytes,
            rejections,
            peak,
            budget,
            invalidations,
            invalidated_bytes,
        ) = match gov_snapshot {
            Ok(snap) => snap,
            Err(_) => {
                self.note_lock_recovery();
                (0, 0, 0, 0, 0, 0, None, 0, 0)
            }
        };
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            build_time: Duration::from_nanos(self.build_nanos.load(Ordering::Relaxed)),
            resident_bytes: resident,
            entries,
            evictions,
            evicted_bytes,
            rejections,
            peak_resident_bytes: peak,
            budget_bytes: budget,
            lock_recoveries: self.lock_recoveries.load(Ordering::Relaxed),
            build_panics: self.build_panics.load(Ordering::Relaxed),
            invalidations,
            invalidated_bytes,
        }
    }

    /// The entry cell for `(table, column)`, creating an empty slot on first
    /// touch. Allocation-free on the hit path: the pair is FNV-hashed and
    /// verified by `&str` comparison inside the bucket; key `String`s are
    /// cloned only when a new slot is inserted.
    fn probe(&self, table: &str, column: &str, key_col: &Column) -> Entry {
        let h = slot_hash(table, column);
        let touch = || self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        let verifies = |s: &Slot| {
            s.table == table && s.column == column && s.key_col.same_data(key_col)
        };
        // Fast path: shared read lock, atomic LRU touch.
        if let Ok(gov) = self.gov.read() {
            if let Some(slot) = gov.buckets.get(&h).and_then(|b| b.iter().find(|s| verifies(s))) {
                slot.last_touch.store(touch(), Ordering::Relaxed);
                return Arc::clone(&slot.cell);
            }
        }
        // Slow path: insert a fresh (empty) slot. Index construction
        // happens later, outside this lock, via the entry's OnceLock.
        match self.gov.write() {
            Ok(mut gov) => {
                let bucket = gov.buckets.entry(h).or_default();
                if let Some(slot) = bucket.iter().find(|s| verifies(s)) {
                    slot.last_touch.store(touch(), Ordering::Relaxed);
                    return Arc::clone(&slot.cell);
                }
                let slot = Slot {
                    table: table.to_string(),
                    column: column.to_string(),
                    key_col: key_col.clone(),
                    cell: Entry::default(),
                    last_touch: AtomicU64::new(touch()),
                    bytes: 0,
                };
                let cell = Arc::clone(&slot.cell);
                bucket.push(slot);
                cell
            }
            // A poisoned lock means a thread panicked while holding the
            // governor; fall back to an uncached transient entry so callers
            // still make progress. The entry is unowned, so `admit` (which
            // requires a map-owned slot holding this very cell) will not
            // register its bytes — degraded mode cannot leak phantom
            // residency into the stats. Counted: degraded, never silent.
            Err(_) => {
                self.note_lock_recovery();
                Entry::default()
            }
        }
    }

    /// Fit-or-deny admission of a freshly built index (the build winner
    /// calls this exactly once per build). Bytes are registered only when
    /// the map still owns the very cell that was filled — transient entries
    /// from the degraded path fail the `Arc::ptr_eq` ownership check and
    /// stay unaccounted. A build that does not fit the budget is denied:
    /// its slot is removed (the caller keeps the only retained reference)
    /// and the denial is tallied as a rejection.
    fn admit(&self, table: &str, column: &str, entry: &Entry, index: &Arc<JoinIndex>) {
        let bytes = index.resident_bytes() as u64;
        let h = slot_hash(table, column);
        let Ok(mut guard) = self.gov.write() else {
            self.note_lock_recovery();
            return;
        };
        let gov = &mut *guard;
        let Some(bucket) = gov.buckets.get_mut(&h) else { return };
        let Some(i) = bucket
            .iter()
            .position(|s| s.table == table && s.column == column && Arc::ptr_eq(&s.cell, entry))
        else {
            return;
        };
        if gov.budget.is_some_and(|b| gov.resident + bytes > b) {
            bucket.swap_remove(i);
            if bucket.is_empty() {
                gov.buckets.remove(&h);
            }
            gov.rejections += 1;
            obs::incr("cache.admission_rejected");
            record(|r| {
                r.rejections.fetch_add(1, Ordering::Relaxed);
            });
        } else {
            bucket[i].bytes = bytes;
            gov.resident += bytes;
            gov.note_peak();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::join::left_join_normalized;

    fn lake_table(name: &str, dup: i64) -> Table {
        let n = 48i64;
        Table::new(
            name,
            vec![
                ("key", Column::from_ints((0..n).map(|i| Some(i / dup)))),
                ("v", Column::from_ints((0..n).map(Some))),
            ],
        )
        .unwrap()
    }

    fn base() -> Table {
        Table::new("base", vec![("id", Column::from_ints((0..8).map(Some)))]).unwrap()
    }

    /// Footprint of one `lake_table` index — every `lake_table` has the
    /// same shape, so budgets can be expressed in index multiples.
    fn one_index_bytes() -> u64 {
        let t = lake_table("probe", 6);
        JoinIndex::build(&t, t.column("key").unwrap()).resident_bytes() as u64
    }

    #[test]
    fn recorders_attribute_activity_per_request() {
        let cache = LakeIndexCache::with_budget(None);
        let l = base();
        let r = lake_table("rec_attr_sat", 6);
        let a = CacheRecorder::new();
        let b = CacheRecorder::new();
        {
            let _g = install_recorder(Some(Arc::clone(&a)));
            cache.left_join_normalized(&l, &r, "id", "key", "s", 1).unwrap(); // miss
            cache.left_join_normalized(&l, &r, "id", "key", "s", 2).unwrap(); // hit
        }
        {
            let _g = install_recorder(Some(Arc::clone(&b)));
            cache.left_join_normalized(&l, &r, "id", "key", "s", 3).unwrap(); // hit
        }
        let sa = a.attributed(&cache);
        let sb = b.attributed(&cache);
        assert_eq!((sa.hits, sa.misses), (1, 1), "request A built once, hit once");
        assert_eq!((sb.hits, sb.misses), (1, 0), "request B only hit");
        assert!(sa.build_time > Duration::ZERO, "build time lands on the builder");
        assert_eq!(sb.build_time, Duration::ZERO);
        let global = cache.stats();
        assert_eq!(global.hits, sa.hits + sb.hits, "recorders sum to the global delta");
        assert_eq!(global.misses, sa.misses + sb.misses);
        assert_eq!(sa.resident_bytes, global.resident_bytes, "occupancy is shared state");
        assert!(ambient_recorder().is_none(), "guards restored");
    }

    #[test]
    fn recorder_attributes_evictions_to_the_budget_applier() {
        let cache = LakeIndexCache::with_budget(None);
        let l = base();
        for name in ["rec_ev_a", "rec_ev_b"] {
            let r = lake_table(name, 6);
            cache.left_join_normalized(&l, &r, "id", "key", "p", 1).unwrap();
        }
        let rec = CacheRecorder::new();
        {
            let _g = install_recorder(Some(Arc::clone(&rec)));
            cache.set_budget(Some(one_index_bytes())); // evicts one of the two
        }
        let s = rec.attributed(&cache);
        assert_eq!(s.evictions, 1, "the eviction burst lands on the applying request");
        assert!(s.evicted_bytes > 0);
        assert_eq!((s.hits, s.misses), (0, 0), "no join activity recorded");
    }

    #[test]
    fn second_join_through_same_entry_hits() {
        let cache = LakeIndexCache::with_budget(None);
        let r = lake_table("sat", 6);
        let l = base();
        cache.left_join_normalized(&l, &r, "id", "key", "sat", 1).unwrap();
        let s1 = cache.stats();
        assert_eq!((s1.hits, s1.misses, s1.entries), (0, 1, 1));
        cache.left_join_normalized(&l, &r, "id", "key", "sat", 2).unwrap();
        let s2 = cache.stats();
        assert_eq!((s2.hits, s2.misses, s2.entries), (1, 1, 1));
        assert!(s2.resident_bytes > 0);
        assert_eq!(s2.resident_bytes, s1.resident_bytes, "no rebuild on hit");
        assert_eq!(s2.peak_resident_bytes, s2.resident_bytes);
        assert_eq!((s2.evictions, s2.rejections), (0, 0));
    }

    #[test]
    fn distinct_columns_get_distinct_entries() {
        let cache = LakeIndexCache::with_budget(None);
        let t = Table::new(
            "sat",
            vec![
                ("a", Column::from_ints([Some(1), Some(2)])),
                ("b", Column::from_ints([Some(3), Some(3)])),
            ],
        )
        .unwrap();
        cache.get_or_build(&t, "a").unwrap();
        cache.get_or_build(&t, "b").unwrap();
        assert_eq!(cache.stats().entries, 2);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn cached_join_is_bit_identical_to_uncached() {
        let cache = LakeIndexCache::with_budget(None);
        let r = lake_table("sat", 6);
        let l = base();
        for seed in [1u64, 7, 42] {
            let plain = left_join_normalized(&l, &r, "id", "key", "sat", seed).unwrap();
            let cached = cache.left_join_normalized(&l, &r, "id", "key", "sat", seed).unwrap();
            assert_eq!(plain.table, cached.table, "seed {seed}");
        }
    }

    #[test]
    fn missing_column_errors_without_poisoning() {
        let cache = LakeIndexCache::with_budget(None);
        let r = lake_table("sat", 6);
        assert!(cache.get_or_build(&r, "ghost").is_err());
        assert_eq!(cache.stats().entries, 0);
        cache.get_or_build(&r, "key").unwrap();
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn concurrent_builders_build_once() {
        use std::sync::Barrier;
        let cache = Arc::new(LakeIndexCache::with_budget(None));
        let r = Arc::new(lake_table("sat", 6));
        let n = 8;
        let barrier = Arc::new(Barrier::new(n));
        let handles: Vec<_> = (0..n)
            .map(|_| {
                let (cache, r, barrier) = (Arc::clone(&cache), Arc::clone(&r), Arc::clone(&barrier));
                std::thread::spawn(move || {
                    barrier.wait();
                    cache.get_or_build(&r, "key").unwrap()
                })
            })
            .collect();
        let indexes: Vec<Arc<JoinIndex>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for ix in &indexes[1..] {
            assert!(Arc::ptr_eq(&indexes[0], ix), "all callers share one index");
        }
        let s = cache.stats();
        assert_eq!(s.misses, 1, "exactly one build");
        assert_eq!(s.hits, (n as u64) - 1);
        assert_eq!(s.entries, 1);
    }

    #[test]
    fn stats_since_deltas_counters_keeps_occupancy() {
        let earlier = CacheStats {
            hits: 2,
            misses: 1,
            build_time: Duration::from_millis(5),
            resident_bytes: 100,
            entries: 1,
            evictions: 1,
            evicted_bytes: 50,
            rejections: 0,
            peak_resident_bytes: 150,
            budget_bytes: Some(200),
            lock_recoveries: 1,
            build_panics: 0,
            invalidations: 1,
            invalidated_bytes: 30,
        };
        let later = CacheStats {
            hits: 10,
            misses: 3,
            build_time: Duration::from_millis(12),
            resident_bytes: 300,
            entries: 3,
            evictions: 3,
            evicted_bytes: 170,
            rejections: 2,
            peak_resident_bytes: 350,
            budget_bytes: Some(400),
            lock_recoveries: 4,
            build_panics: 2,
            invalidations: 5,
            invalidated_bytes: 130,
        };
        let d = later.since(&earlier);
        assert_eq!(d.hits, 8);
        assert_eq!(d.misses, 2);
        assert_eq!(d.build_time, Duration::from_millis(7));
        assert_eq!(d.resident_bytes, 300);
        assert_eq!(d.entries, 3);
        assert_eq!(d.evictions, 2);
        assert_eq!(d.evicted_bytes, 120);
        assert_eq!(d.rejections, 2);
        assert_eq!(d.peak_resident_bytes, 350);
        assert_eq!(d.budget_bytes, Some(400));
        assert_eq!(d.lock_recoveries, 3);
        assert_eq!(d.build_panics, 2);
        assert_eq!(d.invalidations, 4);
        assert_eq!(d.invalidated_bytes, 100);
    }

    #[test]
    fn invalidate_table_removes_only_that_tables_slots() {
        let cache = LakeIndexCache::with_budget(None);
        let l = base();
        let a = lake_table("inv_a", 6);
        let b = lake_table("inv_b", 6);
        cache.left_join_normalized(&l, &a, "id", "key", "p", 1).unwrap();
        cache.left_join_normalized(&l, &b, "id", "key", "p", 1).unwrap();
        let before = cache.stats();
        assert_eq!(before.entries, 2);
        assert_eq!(cache.invalidate_table("inv_a"), 1);
        let st = cache.stats();
        assert_eq!(st.entries, 1, "only inv_a's slot dropped");
        assert_eq!(st.invalidations, 1);
        assert!(st.invalidated_bytes > 0);
        assert_eq!(st.resident_bytes, before.resident_bytes - st.invalidated_bytes);
        // The survivor still hits; the invalidated table rebuilds.
        cache.left_join_normalized(&l, &b, "id", "key", "p", 2).unwrap();
        cache.left_join_normalized(&l, &a, "id", "key", "p", 2).unwrap();
        let st2 = cache.stats();
        assert_eq!(st2.hits, before.hits + 1);
        assert_eq!(st2.misses, before.misses + 1);
        // Unknown tables are a counted-as-zero no-op.
        assert_eq!(cache.invalidate_table("ghost"), 0);
    }

    #[test]
    fn same_name_different_contents_gets_a_distinct_slot() {
        // A re-added table keeps its name but carries new column payloads;
        // slot verification is by data identity, so the new version must
        // never be served the old version's index.
        let cache = LakeIndexCache::with_budget(None);
        let v1 = lake_table("versioned", 6);
        let v2 = lake_table("versioned", 2); // same name, different contents
        let i1 = cache.get_or_build(&v1, "key").unwrap();
        let i2 = cache.get_or_build(&v2, "key").unwrap();
        assert!(!Arc::ptr_eq(&i1, &i2), "distinct versions, distinct indexes");
        let st = cache.stats();
        assert_eq!((st.misses, st.entries), (2, 2), "both versions resident");
        // A clone of v1 shares its payload → still hits v1's slot.
        let v1_clone = v1.clone();
        let i1_again = cache.get_or_build(&v1_clone, "key").unwrap();
        assert!(Arc::ptr_eq(&i1, &i1_again));
        assert_eq!(cache.stats().hits, 1);
        // Invalidating the name drops *all* versions.
        assert_eq!(cache.invalidate_table("versioned"), 2);
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn parse_budget_accepts_plain_and_suffixed() {
        assert_eq!(parse_budget_bytes("1048576"), Some(1 << 20));
        assert_eq!(parse_budget_bytes("512K"), Some(512 << 10));
        assert_eq!(parse_budget_bytes("24m"), Some(24 << 20));
        assert_eq!(parse_budget_bytes("24MiB"), Some(24 << 20));
        assert_eq!(parse_budget_bytes("2GB"), Some(2 << 30));
        assert_eq!(parse_budget_bytes(" 8M "), Some(8 << 20));
        assert_eq!(parse_budget_bytes("0"), Some(0));
        assert_eq!(parse_budget_bytes(""), None);
        assert_eq!(parse_budget_bytes("lots"), None);
        assert_eq!(parse_budget_bytes("12X"), None);
        assert_eq!(parse_budget_bytes("99999999999G"), None, "overflow rejected");
    }

    #[test]
    fn admission_denies_what_does_not_fit_and_joins_still_work() {
        let one = one_index_bytes();
        // Room for exactly two indexes.
        let cache = LakeIndexCache::with_budget(Some(2 * one + one / 2));
        let l = base();
        let sats: Vec<Table> = (0..4).map(|i| lake_table(&format!("sat{i}"), 6)).collect();
        let mut outs = Vec::new();
        for s in &sats {
            outs.push(cache.left_join_normalized(&l, s, "id", "key", "p", 7).unwrap());
        }
        let st = cache.stats();
        assert_eq!(st.entries, 2, "first two fit, rest denied");
        assert_eq!(st.resident_bytes, 2 * one);
        assert_eq!(st.rejections, 2);
        assert_eq!(st.misses, 4);
        assert_eq!(st.evictions, 0, "admission never evicts");
        assert!(st.peak_resident_bytes <= st.budget_bytes.unwrap());
        // Re-touching: admitted entries hit, denied entries rebuild + deny.
        for s in &sats {
            let again = cache.left_join_normalized(&l, s, "id", "key", "p", 7).unwrap();
            let first = &outs[sats.iter().position(|t| t.name() == s.name()).unwrap()];
            assert_eq!(again.table, first.table, "denied path stays bit-identical");
        }
        let st2 = cache.stats();
        assert_eq!(st2.hits, 2);
        assert_eq!(st2.misses, 6);
        assert_eq!(st2.rejections, 4);
        assert!(st2.peak_resident_bytes <= st2.budget_bytes.unwrap());
    }

    #[test]
    fn zero_budget_retains_nothing_but_serves_all_joins() {
        let cache = LakeIndexCache::with_budget(Some(0));
        let l = base();
        let r = lake_table("sat", 6);
        for seed in [1u64, 2, 3] {
            let cached = cache.left_join_normalized(&l, &r, "id", "key", "sat", seed).unwrap();
            let plain = left_join_normalized(&l, &r, "id", "key", "sat", seed).unwrap();
            assert_eq!(cached.table, plain.table);
        }
        let st = cache.stats();
        assert_eq!(st.entries, 0);
        assert_eq!(st.resident_bytes, 0);
        assert_eq!(st.peak_resident_bytes, 0);
        assert_eq!(st.misses, 3);
        assert_eq!(st.rejections, 3);
    }

    #[test]
    fn budget_shrink_evicts_lru_first() {
        let one = one_index_bytes();
        let cache = LakeIndexCache::with_budget(None);
        let l = base();
        let sats: Vec<Table> = (0..3).map(|i| lake_table(&format!("sat{i}"), 6)).collect();
        for s in &sats {
            cache.left_join_normalized(&l, s, "id", "key", "p", 7).unwrap();
        }
        // Touch order now: sat0 coldest. Re-touch sat0 → sat1 coldest.
        cache.left_join_normalized(&l, &sats[0], "id", "key", "p", 7).unwrap();
        cache.set_budget(Some(2 * one));
        let st = cache.stats();
        assert_eq!(st.evictions, 1);
        assert_eq!(st.evicted_bytes, one);
        assert_eq!(st.entries, 2);
        assert_eq!(st.resident_bytes, 2 * one);
        assert_eq!(st.peak_resident_bytes, st.resident_bytes, "new peak epoch");
        let (h0, m0) = (st.hits, st.misses);
        // sat1 was the LRU victim: touching it rebuilds (miss); sat0 and
        // sat2 survived: hits.
        cache.left_join_normalized(&l, &sats[0], "id", "key", "p", 7).unwrap();
        cache.left_join_normalized(&l, &sats[2], "id", "key", "p", 7).unwrap();
        let st = cache.stats();
        assert_eq!(st.hits - h0, 2, "survivors are the recently-touched slots");
        cache.left_join_normalized(&l, &sats[1], "id", "key", "p", 7).unwrap();
        let st = cache.stats();
        assert_eq!(st.misses - m0, 1, "victim rebuilds on next touch");
        // Rebuilt sat1 does not fit (budget full) → denied, not evicting.
        assert_eq!(st.evictions, 1);
        assert_eq!(st.rejections, 1);
    }

    #[test]
    fn evicted_index_stays_valid_for_in_flight_joins() {
        let cache = LakeIndexCache::with_budget(None);
        let l = base();
        let r = lake_table("sat", 6);
        let index = cache.get_or_build(&r, "key").unwrap();
        let before = left_join_with_index(&l, &r, &index, "id", "sat", 42).unwrap();
        cache.set_budget(Some(0)); // evicts everything
        let st = cache.stats();
        assert_eq!((st.entries, st.resident_bytes, st.evictions), (0, 0, 1));
        // The held Arc is untouched by eviction: same index, same result.
        let after = left_join_with_index(&l, &r, &index, "id", "sat", 42).unwrap();
        assert_eq!(before.table, after.table);
        let plain = left_join_normalized(&l, &r, "id", "key", "sat", 42).unwrap();
        assert_eq!(after.table, plain.table);
    }

    /// Concurrent eviction under live joins: worker threads continuously
    /// join through the cache while the main thread flaps the budget
    /// between zero and unbounded. Every join must succeed and residency
    /// must end exactly where the final budget says.
    #[test]
    fn eviction_races_in_flight_joins_safely() {
        let cache = Arc::new(LakeIndexCache::with_budget(None));
        let l = Arc::new(base());
        let sats: Arc<Vec<Table>> =
            Arc::new((0..4).map(|i| lake_table(&format!("sat{i}"), 6)).collect());
        let expected: Vec<_> = sats
            .iter()
            .map(|s| left_join_normalized(&l, s, "id", "key", "p", 9).unwrap().table)
            .collect();
        let workers: Vec<_> = (0..4)
            .map(|w| {
                let (cache, l, sats, expected) =
                    (Arc::clone(&cache), Arc::clone(&l), Arc::clone(&sats), expected.clone());
                std::thread::spawn(move || {
                    for round in 0..50 {
                        let i = (w + round) % sats.len();
                        let out = cache
                            .left_join_normalized(&l, &sats[i], "id", "key", "p", 9)
                            .unwrap();
                        assert_eq!(out.table, expected[i], "join stays bit-identical");
                    }
                })
            })
            .collect();
        for _ in 0..50 {
            cache.set_budget(Some(0));
            cache.set_budget(None);
        }
        for w in workers {
            w.join().unwrap();
        }
        cache.set_budget(Some(0));
        let st = cache.stats();
        assert_eq!((st.entries, st.resident_bytes), (0, 0));
        assert_eq!(st.hits + st.misses, 4 * 50, "every join counted once");
    }

    /// Hit/miss/rejection/eviction totals must not depend on how the same
    /// workload is spread over threads. Each thread owns a disjoint set of
    /// uniform-size tables and touches each twice; admission capacity is
    /// fixed, so the totals are fully determined even though *which* tables
    /// win admission depends on timing.
    #[test]
    fn counter_totals_invariant_across_thread_counts() {
        let one = one_index_bytes();
        let n_tables = 12usize;
        let fit = 5u64; // budget admits exactly 5 of the 12
        let sats: Arc<Vec<Table>> =
            Arc::new((0..n_tables).map(|i| lake_table(&format!("sat{i:02}"), 6)).collect());
        let run = |n_threads: usize| -> CacheStats {
            let cache = Arc::new(LakeIndexCache::with_budget(Some(fit * one + one / 2)));
            let l = Arc::new(base());
            let handles: Vec<_> = (0..n_threads)
                .map(|t| {
                    let (cache, l, sats) =
                        (Arc::clone(&cache), Arc::clone(&l), Arc::clone(&sats));
                    std::thread::spawn(move || {
                        for pass in 0..2 {
                            for i in (t..sats.len()).step_by(n_threads) {
                                cache
                                    .left_join_normalized(&l, &sats[i], "id", "key", "p", pass)
                                    .unwrap();
                            }
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            cache.stats()
        };
        let (s1, s4) = (run(1), run(4));
        assert_eq!(s1.hits, s4.hits, "hits invariant");
        assert_eq!(s1.misses, s4.misses, "misses invariant");
        assert_eq!(s1.rejections, s4.rejections, "rejections invariant");
        assert_eq!(s1.evictions, s4.evictions, "evictions invariant");
        // And the totals themselves are exact: pass 1 = 12 misses with 5
        // admissions; pass 2 = 5 hits + 7 rebuild-misses; every denied
        // build (7 + 7) is a rejection.
        assert_eq!((s1.hits, s1.misses, s1.rejections), (5, 19, 14));
        assert!(s1.peak_resident_bytes <= s1.budget_bytes.unwrap());
        assert!(s4.peak_resident_bytes <= s4.budget_bytes.unwrap());
    }

    /// A panic while holding the governor lock poisons it; the cache must
    /// degrade to transient (unretained, unaccounted) entries rather than
    /// fail — and must not report phantom resident bytes for builds it
    /// does not own.
    #[test]
    fn poisoned_governor_degrades_without_phantom_accounting() {
        let cache = Arc::new(LakeIndexCache::with_budget(None));
        let poisoner = Arc::clone(&cache);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.gov.write().unwrap();
            panic!("poison the governor");
        })
        .join();
        let l = base();
        let r = lake_table("sat", 6);
        let out = cache.left_join_normalized(&l, &r, "id", "key", "sat", 5).unwrap();
        let plain = left_join_normalized(&l, &r, "id", "key", "sat", 5).unwrap();
        assert_eq!(out.table, plain.table, "degraded mode still serves joins");
        let st = cache.stats();
        assert_eq!(st.entries, 0, "nothing owned");
        assert_eq!(st.resident_bytes, 0, "no phantom residency");
        assert_eq!(st.misses, 1, "build still counted as work done");
        assert!(st.lock_recoveries >= 1, "degraded mode is counted, not silent: {st:?}");
    }

    #[test]
    fn build_panic_is_isolated_counted_and_retryable() {
        let cache = LakeIndexCache::with_budget(None);
        let r = lake_table("cache_panic_sat", 6);
        crate::faults::arm(
            "cache_panic_sat",
            crate::faults::TableFaults { panic_on_row: Some(2), slow_join_ms: None },
        );
        let err = cache.get_or_build(&r, "key").expect_err("armed build must fail");
        match &err {
            DataError::BuildPanicked { table, message } => {
                assert_eq!(table, "cache_panic_sat");
                assert!(message.contains("panic_on_row 2"), "{message}");
            }
            other => panic!("expected BuildPanicked, got {other:?}"),
        }
        let st = cache.stats();
        assert_eq!(st.build_panics, 1);
        assert_eq!(st.entries, 0, "poisoned slot dropped");
        assert_eq!(st.misses, 0, "a panicked build is not a served miss");
        // Disarm and retry: the entry rebuilds cleanly.
        crate::faults::disarm("cache_panic_sat");
        cache.get_or_build(&r, "key").unwrap();
        let st = cache.stats();
        assert_eq!((st.misses, st.entries), (1, 1), "retry succeeds after disarm");
    }

    #[test]
    fn interrupted_control_stops_cold_builds() {
        let cache = LakeIndexCache::with_budget(None);
        let r = lake_table("cache_ctl_sat", 6);
        let ctl = Arc::new(crate::control::RunControl::new());
        ctl.cancel();
        {
            let _g = crate::control::install_ambient(Some(Arc::clone(&ctl)));
            let err = cache.get_or_build(&r, "key").expect_err("cancelled run builds nothing");
            assert_eq!(err.interrupt(), Some(crate::control::Interrupt::Cancelled));
        }
        assert_eq!(cache.stats().misses, 0);
        // Without the ambient control the same build proceeds.
        cache.get_or_build(&r, "key").unwrap();
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn env_budget_applies_to_new_caches() {
        // Serialize around the env var: tests in this binary run in
        // parallel, but no other test reads CACHE_BUDGET_ENV.
        std::env::set_var(CACHE_BUDGET_ENV, "3M");
        let c = LakeIndexCache::new();
        std::env::remove_var(CACHE_BUDGET_ENV);
        assert_eq!(c.budget(), Some(3 << 20));
        assert_eq!(LakeIndexCache::new().budget(), None);
        assert_eq!(
            LakeIndexCache::with_budget(Some(7)).budget(),
            Some(7),
            "explicit budget ignores the environment"
        );
    }
}
