//! Lake-wide join-index cache.
//!
//! Discovery evaluates many join paths that funnel through the same few
//! satellite tables: every hop that joins against table `T` on column `c`
//! needs the same key → row-group index, yet the uncached kernel rebuilds it
//! (grouping + fingerprinting every duplicate row) per call. The
//! [`LakeIndexCache`] builds each `(table, join column)` index **once**,
//! thread-safely, and serves it to every subsequent join — the per-seed work
//! then degrades to one hash probe plus a [`mix_u64`](crate::stable_hash::mix_u64)
//! per duplicate candidate.
//!
//! ## Concurrency
//!
//! The map of entries sits behind an [`RwLock`]; each entry is an
//! `Arc<OnceLock<…>>` so that index **construction happens outside the map
//! lock** — two threads racing on the same cold entry serialize only on that
//! entry's `OnceLock` (one builds and counts a miss, the other waits and
//! counts a hit), while joins against other tables proceed untouched.
//!
//! ## Determinism
//!
//! Cached and uncached execution are bit-identical by construction:
//! [`join::left_join_normalized`](crate::join::left_join_normalized) is a
//! wrapper that builds a transient index and calls
//! [`join::left_join_with_index`](crate::join::left_join_with_index), the
//! same function the cache path calls with a memoized index. Fingerprints
//! are seed-independent, so one index serves every seed.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::{Duration, Instant};

use autofeat_obs as obs;

use crate::error::Result;
use crate::join::{left_join_with_index, JoinIndex, JoinOutput};
use crate::table::Table;

/// A point-in-time snapshot of [`LakeIndexCache`] counters, for
/// observability (discovery results, health reports, benchmarks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Joins served from an already-built index.
    pub hits: u64,
    /// Joins that had to build the index first (equals distinct cold
    /// entries touched, absent racing builders).
    pub misses: u64,
    /// Total wall time spent building indexes.
    pub build_time: Duration,
    /// Approximate heap footprint of all resident indexes, in bytes.
    pub resident_bytes: u64,
    /// Number of `(table, join column)` indexes resident.
    pub entries: u64,
}

impl CacheStats {
    /// Counter delta `self − earlier` for the monotonic counters (hits,
    /// misses, build time); resident bytes and entries stay absolute, since
    /// they describe current occupancy rather than cumulative work.
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            build_time: self.build_time.saturating_sub(earlier.build_time),
            resident_bytes: self.resident_bytes,
            entries: self.entries,
        }
    }
}

type EntryKey = (String, String);
type Entry = Arc<OnceLock<Arc<JoinIndex>>>;

/// Thread-safe, lazily-populated cache of [`JoinIndex`]es keyed by
/// `(table name, join column)`.
///
/// Owned (behind an `Arc`) by the search context so that discovery, path
/// materialization, and every baseline share one set of indexes per lake.
/// Indexes are immutable once built; the cache never evicts (a data lake's
/// satellite tables are fixed for the lifetime of a search context).
#[derive(Debug, Default)]
pub struct LakeIndexCache {
    entries: RwLock<HashMap<EntryKey, Entry>>,
    hits: AtomicU64,
    misses: AtomicU64,
    build_nanos: AtomicU64,
    resident_bytes: AtomicU64,
}

impl LakeIndexCache {
    /// Create an empty cache.
    pub fn new() -> LakeIndexCache {
        LakeIndexCache::default()
    }

    /// The join index for `(table, column)`, building it on first use.
    ///
    /// Errors only when `column` is missing from `table` (resolved before
    /// any locking, so a bad column name never poisons an entry). The first
    /// caller per entry builds and counts a **miss**; every other caller —
    /// including threads that waited on a racing build — counts a **hit**.
    pub fn get_or_build(&self, table: &Table, column: &str) -> Result<Arc<JoinIndex>> {
        let key_col = table.column(column)?;

        let entry = self.entry(table.name(), column);
        let mut built = false;
        let index = entry.get_or_init(|| {
            built = true;
            let _span = obs::span("index_build");
            let t0 = Instant::now();
            let index = Arc::new(JoinIndex::build(table, key_col));
            let elapsed = t0.elapsed();
            obs::record_secs("cache.index_build_secs", elapsed.as_secs_f64());
            self.build_nanos
                .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
            self.resident_bytes
                .fetch_add(index.resident_bytes() as u64, Ordering::Relaxed);
            index
        });
        // Exactly one miss per cold entry even when builders race: the
        // OnceLock winner counts the miss, waiters count hits — so the
        // hit/miss totals are invariant across worker thread counts.
        if built {
            self.misses.fetch_add(1, Ordering::Relaxed);
            obs::incr("cache.misses");
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
            obs::incr("cache.hits");
        }
        Ok(Arc::clone(index))
    }

    /// Cached equivalent of
    /// [`join::left_join_normalized`](crate::join::left_join_normalized):
    /// resolves (or builds) the index for `(right, right_key)` and performs
    /// the indexed join. Bit-identical to the uncached call.
    pub fn left_join_normalized(
        &self,
        left: &Table,
        right: &Table,
        left_key: &str,
        right_key: &str,
        prefix: &str,
        seed: u64,
    ) -> Result<JoinOutput> {
        let index = self.get_or_build(right, right_key)?;
        left_join_with_index(left, right, &index, left_key, prefix, seed)
    }

    /// Point-in-time counter snapshot.
    pub fn stats(&self) -> CacheStats {
        let entries = self
            .entries
            .read()
            .map(|m| m.values().filter(|e| e.get().is_some()).count() as u64)
            .unwrap_or(0);
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            build_time: Duration::from_nanos(self.build_nanos.load(Ordering::Relaxed)),
            resident_bytes: self.resident_bytes.load(Ordering::Relaxed),
            entries,
        }
    }

    fn entry(&self, table: &str, column: &str) -> Entry {
        // Fast path: shared read lock.
        if let Ok(map) = self.entries.read() {
            if let Some(e) = map.get(&(table.to_string(), column.to_string())) {
                return Arc::clone(e);
            }
        }
        // Slow path: insert a fresh (empty) entry. Index construction
        // happens later, outside this lock, via the entry's OnceLock.
        match self.entries.write() {
            Ok(mut map) => Arc::clone(
                map.entry((table.to_string(), column.to_string()))
                    .or_default(),
            ),
            // A poisoned lock means a builder thread panicked while holding
            // the write lock; fall back to an uncached transient entry so
            // callers still make progress.
            Err(_) => Entry::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::join::left_join_normalized;

    fn lake_table(name: &str, dup: i64) -> Table {
        let n = 48i64;
        Table::new(
            name,
            vec![
                ("key", Column::from_ints((0..n).map(|i| Some(i / dup)))),
                ("v", Column::from_ints((0..n).map(Some))),
            ],
        )
        .unwrap()
    }

    fn base() -> Table {
        Table::new("base", vec![("id", Column::from_ints((0..8).map(Some)))]).unwrap()
    }

    #[test]
    fn second_join_through_same_entry_hits() {
        let cache = LakeIndexCache::new();
        let r = lake_table("sat", 6);
        let l = base();
        cache.left_join_normalized(&l, &r, "id", "key", "sat", 1).unwrap();
        let s1 = cache.stats();
        assert_eq!((s1.hits, s1.misses, s1.entries), (0, 1, 1));
        cache.left_join_normalized(&l, &r, "id", "key", "sat", 2).unwrap();
        let s2 = cache.stats();
        assert_eq!((s2.hits, s2.misses, s2.entries), (1, 1, 1));
        assert!(s2.resident_bytes > 0);
        assert_eq!(s2.resident_bytes, s1.resident_bytes, "no rebuild on hit");
    }

    #[test]
    fn distinct_columns_get_distinct_entries() {
        let cache = LakeIndexCache::new();
        let t = Table::new(
            "sat",
            vec![
                ("a", Column::from_ints([Some(1), Some(2)])),
                ("b", Column::from_ints([Some(3), Some(3)])),
            ],
        )
        .unwrap();
        cache.get_or_build(&t, "a").unwrap();
        cache.get_or_build(&t, "b").unwrap();
        assert_eq!(cache.stats().entries, 2);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn cached_join_is_bit_identical_to_uncached() {
        let cache = LakeIndexCache::new();
        let r = lake_table("sat", 6);
        let l = base();
        for seed in [1u64, 7, 42] {
            let plain = left_join_normalized(&l, &r, "id", "key", "sat", seed).unwrap();
            let cached = cache.left_join_normalized(&l, &r, "id", "key", "sat", seed).unwrap();
            assert_eq!(plain.table, cached.table, "seed {seed}");
        }
    }

    #[test]
    fn missing_column_errors_without_poisoning() {
        let cache = LakeIndexCache::new();
        let r = lake_table("sat", 6);
        assert!(cache.get_or_build(&r, "ghost").is_err());
        assert_eq!(cache.stats().entries, 0);
        cache.get_or_build(&r, "key").unwrap();
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn concurrent_builders_build_once() {
        use std::sync::Barrier;
        let cache = Arc::new(LakeIndexCache::new());
        let r = Arc::new(lake_table("sat", 6));
        let n = 8;
        let barrier = Arc::new(Barrier::new(n));
        let handles: Vec<_> = (0..n)
            .map(|_| {
                let (cache, r, barrier) = (Arc::clone(&cache), Arc::clone(&r), Arc::clone(&barrier));
                std::thread::spawn(move || {
                    barrier.wait();
                    cache.get_or_build(&r, "key").unwrap()
                })
            })
            .collect();
        let indexes: Vec<Arc<JoinIndex>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for ix in &indexes[1..] {
            assert!(Arc::ptr_eq(&indexes[0], ix), "all callers share one index");
        }
        let s = cache.stats();
        assert_eq!(s.misses, 1, "exactly one build");
        assert_eq!(s.hits, (n as u64) - 1);
        assert_eq!(s.entries, 1);
    }

    #[test]
    fn stats_since_deltas_counters_keeps_occupancy() {
        let earlier = CacheStats {
            hits: 2,
            misses: 1,
            build_time: Duration::from_millis(5),
            resident_bytes: 100,
            entries: 1,
        };
        let later = CacheStats {
            hits: 10,
            misses: 3,
            build_time: Duration::from_millis(12),
            resident_bytes: 300,
            entries: 3,
        };
        let d = later.since(&earlier);
        assert_eq!(d.hits, 8);
        assert_eq!(d.misses, 2);
        assert_eq!(d.build_time, Duration::from_millis(7));
        assert_eq!(d.resident_bytes, 300);
        assert_eq!(d.entries, 3);
    }
}
