//! Data-quality statistics.
//!
//! The τ pruning rule (§IV-C / Algorithm 1, line 15) measures the
//! *completeness* of a join result: the fraction of non-null values. A join
//! whose completeness falls below τ is pruned.

use crate::column::Column;
use crate::error::Result;
use crate::table::Table;

/// Per-column quality profile.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Column name.
    pub name: String,
    /// Fraction of null cells.
    pub null_ratio: f64,
    /// Number of distinct non-null values.
    pub distinct: usize,
    /// Mean of the numeric view (None for string columns).
    pub mean: Option<f64>,
}

/// Compute stats for every column of a table.
pub fn column_stats(table: &Table) -> Vec<ColumnStats> {
    (0..table.n_cols())
        .map(|i| {
            let col = table.column_at(i);
            ColumnStats {
                name: table.field_at(i).name.clone(),
                null_ratio: col.null_ratio(),
                distinct: col.distinct_count(),
                mean: col.mean(),
            }
        })
        .collect()
}

/// Completeness of a set of columns: fraction of **non-null** cells, in
/// `[0, 1]`. An empty column set (or empty table) is defined as complete.
pub fn completeness(table: &Table, columns: &[&str]) -> Result<f64> {
    let mut cells = 0usize;
    let mut nulls = 0usize;
    for &c in columns {
        let col = table.column(c)?;
        cells += col.len();
        nulls += col.null_count();
    }
    if cells == 0 {
        return Ok(1.0);
    }
    Ok(1.0 - nulls as f64 / cells as f64)
}

/// The data-quality score used by Algorithm 1's pruning step: the
/// completeness of the columns newly contributed by a join. A path is pruned
/// when `data_quality < tau`.
pub fn passes_quality_threshold(table: &Table, new_columns: &[&str], tau: f64) -> Result<bool> {
    Ok(completeness(table, new_columns)? >= tau)
}

/// Coefficient of determination helpers: sample variance of the numeric
/// view of a column, ignoring nulls. `None` when fewer than two numeric
/// values exist.
pub fn variance(col: &Column) -> Option<f64> {
    let vals: Vec<f64> = (0..col.len()).filter_map(|i| col.get_f64(i)).collect();
    if vals.len() < 2 {
        return None;
    }
    let mean = vals.iter().sum::<f64>() / vals.len() as f64;
    let ss: f64 = vals.iter().map(|v| (v - mean) * (v - mean)).sum();
    Some(ss / (vals.len() - 1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        Table::new(
            "t",
            vec![
                ("a", Column::from_ints([Some(1), None, Some(1), Some(2)])),
                ("b", Column::from_strs([Some("x"), None, None, None])),
            ],
        )
        .unwrap()
    }

    #[test]
    fn stats_cover_columns() {
        let s = column_stats(&table());
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].name, "a");
        assert!((s[0].null_ratio - 0.25).abs() < 1e-12);
        assert_eq!(s[0].distinct, 2);
        assert!(s[0].mean.is_some());
        assert_eq!(s[1].mean, None);
        assert!((s[1].null_ratio - 0.75).abs() < 1e-12);
    }

    #[test]
    fn completeness_over_selected_columns() {
        let t = table();
        assert!((completeness(&t, &["a"]).unwrap() - 0.75).abs() < 1e-12);
        assert!((completeness(&t, &["a", "b"]).unwrap() - 0.5).abs() < 1e-12);
        assert_eq!(completeness(&t, &[]).unwrap(), 1.0);
    }

    #[test]
    fn quality_threshold_gate() {
        let t = table();
        assert!(passes_quality_threshold(&t, &["a"], 0.7).unwrap());
        assert!(!passes_quality_threshold(&t, &["b"], 0.5).unwrap());
        // tau = 0 always passes
        assert!(passes_quality_threshold(&t, &["b"], 0.0).unwrap());
    }

    #[test]
    fn completeness_missing_column_errors() {
        assert!(completeness(&table(), &["ghost"]).is_err());
    }

    #[test]
    fn variance_basics() {
        let c = Column::from_floats([Some(1.0), Some(2.0), Some(3.0)]);
        assert!((variance(&c).unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(variance(&Column::from_floats([Some(1.0)])), None);
        // nulls are skipped
        let c2 = Column::from_floats([Some(1.0), None, Some(3.0)]);
        assert!((variance(&c2).unwrap() - 2.0).abs() < 1e-12);
    }
}
