//! Process-level runtime fault injection for resilience testing.
//!
//! The CSV corruptor (`autofeat-datagen`) breaks lakes *at rest*; this
//! registry breaks them *in flight*: a worker panic while a join index is
//! being built, or a pathologically slow join, armed per table name. The
//! resilience tests use it to prove panic isolation (one poisoned path
//! must not abort the run) and deadline enforcement (a slow join must not
//! overrun the budget unchecked).
//!
//! ## Scoping
//!
//! Faults are keyed by **(domain, table name)**. A [`FaultDomain`] is a
//! handle identifying one lake/registry instance: each `SearchContext`
//! owns one, installs it ambiently for the duration of a run (fan-out
//! workers re-install it, mirroring [`crate::control`]), and every fault
//! armed through the handle is disarmed when the handle drops. Two
//! concurrent requests over lakes that happen to contain a same-named
//! table therefore cannot arm each other's faults.
//!
//! The free functions [`arm`]/[`disarm`] target the **global domain**
//! (id 0), which every lookup falls back to when its scoped domain has no
//! entry — existing single-lake tests and the corruptor keep working
//! unchanged, as long as they use unique table names.
//!
//! Production cost is a single relaxed atomic load per join/build when
//! nothing is armed anywhere ([`lookup`] bails before touching the map).

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Runtime faults armed for one table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TableFaults {
    /// Panic while building the join index for this table, when the build
    /// reaches this row (no-op if the table is shorter).
    pub panic_on_row: Option<usize>,
    /// Sleep this many milliseconds at the start of every join against
    /// this table (interruptible via the ambient [`crate::control`]).
    pub slow_join_ms: Option<u64>,
}

impl TableFaults {
    /// No faults armed.
    pub fn is_empty(&self) -> bool {
        self.panic_on_row.is_none() && self.slow_join_ms.is_none()
    }
}

/// Domain id of the process-global registry targeted by the free
/// [`arm`]/[`disarm`] functions; every scoped lookup falls back to it.
const GLOBAL_DOMAIN: u64 = 0;

static ANY_ARMED: AtomicBool = AtomicBool::new(false);
static NEXT_DOMAIN_ID: AtomicU64 = AtomicU64::new(1);

type Registry = HashMap<u64, HashMap<String, TableFaults>>;

fn registry() -> &'static RwLock<Registry> {
    static REGISTRY: OnceLock<RwLock<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| RwLock::new(HashMap::new()))
}

fn arm_in(domain: u64, table: &str, faults: TableFaults) {
    let Ok(mut map) = registry().write() else { return };
    if faults.is_empty() {
        if let Some(inner) = map.get_mut(&domain) {
            inner.remove(table);
            if inner.is_empty() {
                map.remove(&domain);
            }
        }
    } else {
        map.entry(domain).or_default().insert(table.to_string(), faults);
    }
    ANY_ARMED.store(!map.is_empty(), Ordering::SeqCst);
}

/// A fault-registration scope tied to one lake/registry instance.
///
/// Faults armed through a domain are visible only to lookups running with
/// that domain installed ambiently (plus the global fallback), and are
/// disarmed wholesale when the last `Arc<FaultDomain>` clone drops.
#[derive(Debug)]
pub struct FaultDomain {
    id: u64,
}

impl FaultDomain {
    /// A fresh domain with a process-unique id.
    pub fn new() -> Arc<FaultDomain> {
        Arc::new(FaultDomain { id: NEXT_DOMAIN_ID.fetch_add(1, Ordering::SeqCst) })
    }

    /// This domain's unique id (0 is reserved for the global domain).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Arm `faults` for `table` within this domain, replacing anything
    /// previously armed for it. An empty fault set disarms.
    pub fn arm(&self, table: &str, faults: TableFaults) {
        arm_in(self.id, table, faults);
    }

    /// Disarm all faults for `table` within this domain.
    pub fn disarm(&self, table: &str) {
        self.arm(table, TableFaults::default());
    }
}

impl Drop for FaultDomain {
    fn drop(&mut self) {
        let Ok(mut map) = registry().write() else { return };
        map.remove(&self.id);
        ANY_ARMED.store(!map.is_empty(), Ordering::SeqCst);
    }
}

/// Arm `faults` for `table` in the **global domain**, replacing anything
/// previously armed for it. Arming an empty fault set is equivalent to
/// [`disarm`]. Prefer [`FaultDomain::arm`] when the faults belong to one
/// lake instance.
pub fn arm(table: &str, faults: TableFaults) {
    arm_in(GLOBAL_DOMAIN, table, faults);
}

/// Disarm all global-domain faults for `table`.
pub fn disarm(table: &str) {
    arm(table, TableFaults::default());
}

/// Disarm every fault in the process, across all domains.
pub fn disarm_all() {
    let Ok(mut map) = registry().write() else { return };
    map.clear();
    ANY_ARMED.store(false, Ordering::SeqCst);
}

thread_local! {
    static AMBIENT_DOMAIN: RefCell<Option<Arc<FaultDomain>>> = const { RefCell::new(None) };
}

/// Install `domain` as this thread's ambient fault domain for the guard's
/// lifetime (the previous domain is restored on drop, also on panic).
/// Fan-out workers call this with their spawner's domain so deep layers
/// resolve scoped faults without plumbed handles.
pub fn install_ambient_domain(domain: Option<Arc<FaultDomain>>) -> DomainGuard {
    let prev = AMBIENT_DOMAIN.with(|d| std::mem::replace(&mut *d.borrow_mut(), domain));
    DomainGuard(Some(prev))
}

/// RAII guard from [`install_ambient_domain`].
pub struct DomainGuard(Option<Option<Arc<FaultDomain>>>);

impl Drop for DomainGuard {
    fn drop(&mut self) {
        if let Some(prev) = self.0.take() {
            AMBIENT_DOMAIN.with(|d| *d.borrow_mut() = prev);
        }
    }
}

/// The fault domain currently installed on this thread, if any.
pub fn ambient_domain() -> Option<Arc<FaultDomain>> {
    AMBIENT_DOMAIN.with(|d| d.borrow().clone())
}

/// The faults armed for `table`: the ambient domain's entry when one is
/// installed and has it, falling back to the global domain. One atomic
/// load when the registry is empty — the production fast path.
pub fn lookup(table: &str) -> Option<TableFaults> {
    if !ANY_ARMED.load(Ordering::Relaxed) {
        return None;
    }
    let scoped = AMBIENT_DOMAIN.with(|d| d.borrow().as_ref().map(|dom| dom.id));
    let map = registry().read().ok()?;
    if let Some(id) = scoped {
        if let Some(f) = map.get(&id).and_then(|inner| inner.get(table)) {
            return Some(*f);
        }
    }
    map.get(&GLOBAL_DOMAIN).and_then(|inner| inner.get(table)).copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arm_lookup_disarm_roundtrip() {
        let t = "faults_rt_roundtrip"; // unique name: tests run in parallel
        assert_eq!(lookup(t), None);
        arm(t, TableFaults { panic_on_row: Some(3), slow_join_ms: None });
        assert_eq!(lookup(t).unwrap().panic_on_row, Some(3));
        arm(t, TableFaults { panic_on_row: None, slow_join_ms: Some(25) });
        assert_eq!(lookup(t).unwrap().slow_join_ms, Some(25), "re-arm replaces");
        disarm(t);
        assert_eq!(lookup(t), None);
    }

    #[test]
    fn arming_empty_set_disarms() {
        let t = "faults_rt_empty";
        arm(t, TableFaults { panic_on_row: Some(1), slow_join_ms: None });
        arm(t, TableFaults::default());
        assert_eq!(lookup(t), None);
    }

    #[test]
    fn lookup_misses_other_tables() {
        arm("faults_rt_a", TableFaults { panic_on_row: Some(0), slow_join_ms: None });
        assert_eq!(lookup("faults_rt_b"), None);
        disarm("faults_rt_a");
    }

    #[test]
    fn domains_isolate_same_named_tables() {
        let t = "faults_rt_shared_name";
        let a = FaultDomain::new();
        let b = FaultDomain::new();
        a.arm(t, TableFaults { panic_on_row: Some(7), slow_join_ms: None });
        {
            let _g = install_ambient_domain(Some(Arc::clone(&a)));
            assert_eq!(lookup(t).unwrap().panic_on_row, Some(7));
        }
        {
            let _g = install_ambient_domain(Some(Arc::clone(&b)));
            assert_eq!(lookup(t), None, "b must not see a's fault for the same table name");
        }
        assert_eq!(lookup(t), None, "no ambient domain: scoped faults invisible");
    }

    #[test]
    fn scoped_lookup_falls_back_to_global() {
        let t = "faults_rt_global_fallback";
        let dom = FaultDomain::new();
        arm(t, TableFaults { slow_join_ms: Some(9), panic_on_row: None });
        {
            let _g = install_ambient_domain(Some(Arc::clone(&dom)));
            assert_eq!(lookup(t).unwrap().slow_join_ms, Some(9), "global fault visible in scope");
            dom.arm(t, TableFaults { slow_join_ms: Some(1), panic_on_row: None });
            assert_eq!(lookup(t).unwrap().slow_join_ms, Some(1), "scoped entry wins");
        }
        disarm(t);
    }

    #[test]
    fn dropping_domain_disarms_its_faults() {
        let t = "faults_rt_drop_disarms";
        let dom = FaultDomain::new();
        dom.arm(t, TableFaults { panic_on_row: Some(1), slow_join_ms: None });
        let id = dom.id();
        drop(dom);
        let map = registry().read().unwrap();
        assert!(!map.contains_key(&id), "dropped domain leaves no entries behind");
    }
}
