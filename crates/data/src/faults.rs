//! Process-level runtime fault injection for resilience testing.
//!
//! The CSV corruptor (`autofeat-datagen`) breaks lakes *at rest*; this
//! registry breaks them *in flight*: a worker panic while a join index is
//! being built, or a pathologically slow join, armed per table name. The
//! resilience tests use it to prove panic isolation (one poisoned path
//! must not abort the run) and deadline enforcement (a slow join must not
//! overrun the budget unchecked).
//!
//! Faults are keyed by **table name**, so concurrent tests in one binary
//! stay independent as long as each uses unique table names. Production
//! cost is a single relaxed atomic load per join/build when nothing is
//! armed ([`lookup`] bails before touching the map).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{OnceLock, RwLock};

/// Runtime faults armed for one table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TableFaults {
    /// Panic while building the join index for this table, when the build
    /// reaches this row (no-op if the table is shorter).
    pub panic_on_row: Option<usize>,
    /// Sleep this many milliseconds at the start of every join against
    /// this table (interruptible via the ambient [`crate::control`]).
    pub slow_join_ms: Option<u64>,
}

impl TableFaults {
    /// No faults armed.
    pub fn is_empty(&self) -> bool {
        self.panic_on_row.is_none() && self.slow_join_ms.is_none()
    }
}

static ANY_ARMED: AtomicBool = AtomicBool::new(false);

fn registry() -> &'static RwLock<HashMap<String, TableFaults>> {
    static REGISTRY: OnceLock<RwLock<HashMap<String, TableFaults>>> = OnceLock::new();
    REGISTRY.get_or_init(|| RwLock::new(HashMap::new()))
}

/// Arm `faults` for `table`, replacing anything previously armed for it.
/// Arming an empty fault set is equivalent to [`disarm`].
pub fn arm(table: &str, faults: TableFaults) {
    let Ok(mut map) = registry().write() else { return };
    if faults.is_empty() {
        map.remove(table);
    } else {
        map.insert(table.to_string(), faults);
    }
    ANY_ARMED.store(!map.is_empty(), Ordering::SeqCst);
}

/// Disarm all faults for `table`.
pub fn disarm(table: &str) {
    arm(table, TableFaults::default());
}

/// Disarm every fault in the process.
pub fn disarm_all() {
    let Ok(mut map) = registry().write() else { return };
    map.clear();
    ANY_ARMED.store(false, Ordering::SeqCst);
}

/// The faults armed for `table`, if any. One atomic load when the registry
/// is empty — the production fast path.
pub fn lookup(table: &str) -> Option<TableFaults> {
    if !ANY_ARMED.load(Ordering::Relaxed) {
        return None;
    }
    registry().read().ok().and_then(|map| map.get(table).copied())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arm_lookup_disarm_roundtrip() {
        let t = "faults_rt_roundtrip"; // unique name: tests run in parallel
        assert_eq!(lookup(t), None);
        arm(t, TableFaults { panic_on_row: Some(3), slow_join_ms: None });
        assert_eq!(lookup(t).unwrap().panic_on_row, Some(3));
        arm(t, TableFaults { panic_on_row: None, slow_join_ms: Some(25) });
        assert_eq!(lookup(t).unwrap().slow_join_ms, Some(25), "re-arm replaces");
        disarm(t);
        assert_eq!(lookup(t), None);
    }

    #[test]
    fn arming_empty_set_disarms() {
        let t = "faults_rt_empty";
        arm(t, TableFaults { panic_on_row: Some(1), slow_join_ms: None });
        arm(t, TableFaults::default());
        assert_eq!(lookup(t), None);
    }

    #[test]
    fn lookup_misses_other_tables() {
        arm("faults_rt_a", TableFaults { panic_on_row: Some(0), slow_join_ms: None });
        assert_eq!(lookup("faults_rt_b"), None);
        disarm("faults_rt_a");
    }
}
