//! Cooperative run-lifecycle control: shared cancel flag + wall-clock
//! deadline, checked at phase boundaries and per-item fan-out points.
//!
//! A [`RunControl`] is owned (behind an `Arc`) by the search context and
//! shared by every pipeline stage — discovery, cache index builds, join
//! assembly, materialization, baselines, model training. Checks are
//! **cooperative**: nothing is ever killed mid-operation; instead each
//! stage polls [`RunControl::interrupted`] at its natural granularity
//! (per candidate, per hop, per row block) and winds down, returning
//! whatever partial result it has.
//!
//! Two interrupt sources, in priority order:
//!
//! 1. **Cancellation** — [`cancel`](RunControl::cancel) from any thread
//!    flips a shared flag and stamps the request time, so the pipeline can
//!    report its cancel latency (request → return).
//! 2. **Deadline** — an absolute wall-clock instant
//!    ([`set_deadline`](RunControl::set_deadline) /
//!    [`arm_budget`](RunControl::arm_budget)). Run-scoped deadlines
//!    compose with a context-wide one via [`scoped`](RunControl::scoped):
//!    the effective deadline is the minimum across the chain.
//!
//! ## Ambient propagation
//!
//! Deep layers (the join kernel, the index cache) have no `RunControl`
//! parameter — threading one through every signature would churn the whole
//! crate for a check that is usually disabled. Instead, mirroring the
//! ambient tracer in `autofeat-obs`, a control can be installed
//! thread-locally ([`install_ambient`]) and polled from anywhere
//! ([`ambient_interrupted`]); fan-out workers re-install their parent's
//! control. When none is installed the poll is one thread-local read.

use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

/// Why a stage stopped early. Ordered: cancellation wins over deadline
/// when both hold, so repeated polls report a stable reason.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interrupt {
    /// [`RunControl::cancel`] was called.
    Cancelled,
    /// The effective wall-clock deadline passed.
    DeadlineExceeded,
}

impl fmt::Display for Interrupt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Interrupt::Cancelled => write!(f, "cancelled"),
            Interrupt::DeadlineExceeded => write!(f, "deadline exceeded"),
        }
    }
}

/// Shared cancel flag + wall-clock deadline for one discovery request.
///
/// Cheap to poll: a relaxed atomic load, plus an uncontended `RwLock` read
/// when a deadline is armed. Clone the `Arc` into any thread that should be
/// able to cancel the run.
#[derive(Debug, Default)]
pub struct RunControl {
    cancelled: AtomicBool,
    /// When `cancel()` was first called — the start of the cancel-latency
    /// clock.
    cancelled_at: RwLock<Option<Instant>>,
    deadline: RwLock<Option<Instant>>,
    /// Monotonic count of effective `cancel()` calls. Unlike the flag it is
    /// **never cleared by [`reset`](RunControl::reset)**: scoped children
    /// compare it against the value they saw at birth, so a cancel aimed at
    /// a still-draining run survives a reset issued for the next one.
    cancel_epoch: AtomicU64,
    /// Run-scoped controls chain to the context-wide control so either can
    /// interrupt (and the tighter deadline wins).
    parent: Option<Arc<RunControl>>,
    /// The parent's `cancel_epoch` when this child was created. A parent
    /// cancel counts for this child iff it happened at or before the
    /// child's lifetime (live flag) or strictly after this snapshot.
    parent_epoch: u64,
}

impl RunControl {
    /// A fresh control: not cancelled, no deadline.
    pub fn new() -> RunControl {
        RunControl::default()
    }

    /// A child control that also honours `self`'s cancel flag and deadline.
    /// Used to arm a per-run deadline (e.g. from `AutoFeatConfig::
    /// time_budget`) without mutating — or leaking an expired deadline
    /// into — the context-wide control.
    pub fn scoped(self: &Arc<Self>, deadline: Option<Instant>) -> Arc<RunControl> {
        Arc::new(RunControl {
            cancelled: AtomicBool::new(false),
            cancelled_at: RwLock::new(None),
            deadline: RwLock::new(deadline),
            cancel_epoch: AtomicU64::new(0),
            parent: Some(Arc::clone(self)),
            parent_epoch: self.cancel_epoch.load(Ordering::SeqCst),
        })
    }

    /// Request cancellation. Idempotent; the first call stamps the
    /// cancel-latency clock. Takes effect at the next cooperative poll.
    pub fn cancel(&self) {
        if !self.cancelled.swap(true, Ordering::SeqCst) {
            self.cancel_epoch.fetch_add(1, Ordering::SeqCst);
            if let Ok(mut at) = self.cancelled_at.write() {
                at.get_or_insert_with(Instant::now);
            }
        }
    }

    /// Has a cancel targeted this control during the lifetime of a child
    /// born when this control's epoch was `birth_epoch`? True when the flag
    /// is currently up, when a cancel has landed since the snapshot (even
    /// if a later [`reset`](RunControl::reset) cleared the flag), or when
    /// the same holds transitively for a parent.
    fn cancelled_since(&self, birth_epoch: u64) -> bool {
        self.cancelled.load(Ordering::Relaxed)
            || self.cancel_epoch.load(Ordering::Relaxed) > birth_epoch
            || self.parent.as_ref().is_some_and(|p| p.cancelled_since(self.parent_epoch))
    }

    /// Has [`cancel`](RunControl::cancel) been called (here or on a parent)?
    /// A parent cancel is sticky for this child even if the parent is
    /// `reset()` while the child is still draining.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
            || self.parent.as_ref().is_some_and(|p| p.cancelled_since(self.parent_epoch))
    }

    /// When cancellation was first requested (here or on a parent).
    pub fn cancelled_at(&self) -> Option<Instant> {
        let own = self.cancelled_at.read().ok().and_then(|at| *at);
        let parent = self.parent.as_ref().and_then(|p| p.cancelled_at());
        match (own, parent) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Elapsed time since cancellation was requested, `None` if it wasn't.
    pub fn cancel_latency(&self) -> Option<Duration> {
        self.cancelled_at().map(|at| at.elapsed())
    }

    /// Set (or clear) the absolute deadline on this control.
    pub fn set_deadline(&self, deadline: Option<Instant>) {
        if let Ok(mut d) = self.deadline.write() {
            *d = deadline;
        }
    }

    /// Arm a deadline `budget` from now.
    pub fn arm_budget(&self, budget: Duration) {
        self.set_deadline(Instant::now().checked_add(budget));
    }

    /// The effective deadline: the minimum over this control and its
    /// parents. `None` = unbounded.
    pub fn deadline(&self) -> Option<Instant> {
        let own = self.deadline.read().ok().and_then(|d| *d);
        let parent = self.parent.as_ref().and_then(|p| p.deadline());
        match (own, parent) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Time left before the effective deadline (`None` = unbounded,
    /// `Some(ZERO)` = already expired).
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline().map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// The cooperative poll: `Some(reason)` when the run should stop.
    /// Cancellation wins over deadline expiry.
    pub fn interrupted(&self) -> Option<Interrupt> {
        if self.is_cancelled() {
            return Some(Interrupt::Cancelled);
        }
        if self.deadline().is_some_and(|d| Instant::now() >= d) {
            return Some(Interrupt::DeadlineExceeded);
        }
        None
    }

    /// Clear this control's own cancel flag and deadline (parents are
    /// untouched), so a context-owned control can be reused run to run.
    ///
    /// Reset is **generation-safe**: the cancel epoch is deliberately not
    /// cleared, so scoped children created before a cancel keep reporting
    /// [`Interrupt::Cancelled`] even when the reset races with their drain,
    /// while children created after the reset start clean.
    pub fn reset(&self) {
        self.cancelled.store(false, Ordering::SeqCst);
        if let Ok(mut at) = self.cancelled_at.write() {
            *at = None;
        }
        self.set_deadline(None);
    }
}

thread_local! {
    static AMBIENT_CTL: RefCell<Option<Arc<RunControl>>> = const { RefCell::new(None) };
}

/// Install `ctl` as this thread's ambient control for the guard's lifetime
/// (the previous ambient control is restored on drop, also on panic).
/// Fan-out workers call this with their spawner's control so deep layers
/// ([`crate::join`], [`crate::cache`]) can poll without plumbed handles.
pub fn install_ambient(ctl: Option<Arc<RunControl>>) -> AmbientGuard {
    let prev = AMBIENT_CTL.with(|c| std::mem::replace(&mut *c.borrow_mut(), ctl));
    AmbientGuard(Some(prev))
}

/// RAII guard from [`install_ambient`].
pub struct AmbientGuard(Option<Option<Arc<RunControl>>>);

impl Drop for AmbientGuard {
    fn drop(&mut self) {
        if let Some(prev) = self.0.take() {
            AMBIENT_CTL.with(|c| *c.borrow_mut() = prev);
        }
    }
}

/// The control currently installed on this thread, if any.
pub fn ambient() -> Option<Arc<RunControl>> {
    AMBIENT_CTL.with(|c| c.borrow().clone())
}

/// Poll the ambient control: `None` when no control is installed or the
/// run may continue. One thread-local read when uninstalled — cheap enough
/// for per-row-block checks in the join kernel.
pub fn ambient_interrupted() -> Option<Interrupt> {
    AMBIENT_CTL.with(|c| c.borrow().as_ref().and_then(|ctl| ctl.interrupted()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_control_is_uninterrupted() {
        let ctl = RunControl::new();
        assert_eq!(ctl.interrupted(), None);
        assert!(!ctl.is_cancelled());
        assert_eq!(ctl.remaining(), None);
        assert_eq!(ctl.cancel_latency(), None);
    }

    #[test]
    fn cancel_is_idempotent_and_stamps_once() {
        let ctl = RunControl::new();
        ctl.cancel();
        let first = ctl.cancelled_at().unwrap();
        ctl.cancel();
        assert_eq!(ctl.cancelled_at(), Some(first), "stamp not overwritten");
        assert_eq!(ctl.interrupted(), Some(Interrupt::Cancelled));
        assert!(ctl.cancel_latency().unwrap() >= Duration::ZERO);
    }

    #[test]
    fn expired_deadline_interrupts_and_cancel_wins() {
        let ctl = RunControl::new();
        ctl.arm_budget(Duration::ZERO);
        assert_eq!(ctl.interrupted(), Some(Interrupt::DeadlineExceeded));
        assert_eq!(ctl.remaining(), Some(Duration::ZERO));
        ctl.cancel();
        assert_eq!(ctl.interrupted(), Some(Interrupt::Cancelled), "cancel outranks deadline");
    }

    #[test]
    fn scoped_child_sees_parent_cancel_and_tightest_deadline() {
        let parent = Arc::new(RunControl::new());
        let near = Instant::now() + Duration::from_secs(1);
        let far = Instant::now() + Duration::from_secs(3600);
        parent.set_deadline(Some(far));
        let child = parent.scoped(Some(near));
        assert_eq!(child.deadline(), Some(near), "min of chain");
        parent.set_deadline(Some(near - Duration::from_millis(1)));
        assert!(child.deadline().unwrap() < near, "parent tightening applies mid-run");
        assert_eq!(child.interrupted(), None);
        parent.cancel();
        assert_eq!(child.interrupted(), Some(Interrupt::Cancelled));
        assert!(child.cancelled_at().is_some(), "latency clock visible through the chain");
        // Child cancellation does not leak upward.
        let sibling = parent.scoped(None);
        parent.reset();
        sibling.cancel();
        assert!(!parent.is_cancelled());
    }

    #[test]
    fn reset_clears_own_state_only() {
        let ctl = RunControl::new();
        ctl.cancel();
        ctl.arm_budget(Duration::ZERO);
        ctl.reset();
        assert_eq!(ctl.interrupted(), None);
        assert_eq!(ctl.cancelled_at(), None);
    }

    #[test]
    fn reset_during_drain_does_not_swallow_child_cancel() {
        let parent = Arc::new(RunControl::new());
        let draining = parent.scoped(None);
        parent.cancel();
        // The next request resets the shared control while the cancelled
        // run is still winding down — the cancel must stay visible to it.
        parent.reset();
        assert_eq!(
            draining.interrupted(),
            Some(Interrupt::Cancelled),
            "reset during drain must not swallow the cancel"
        );
        assert!(draining.is_cancelled());
        // But the reset does take: the parent itself and children born
        // after it start clean.
        assert!(!parent.is_cancelled());
        let fresh = parent.scoped(None);
        assert_eq!(fresh.interrupted(), None, "post-reset children start clean");
    }

    #[test]
    fn repeated_cancel_reset_cycles_track_generations() {
        let parent = Arc::new(RunControl::new());
        for _ in 0..3 {
            let child = parent.scoped(None);
            assert!(!child.is_cancelled(), "new generation starts clean");
            parent.cancel();
            parent.reset();
            assert!(child.is_cancelled(), "own generation's cancel is sticky");
        }
    }

    #[test]
    fn ambient_install_restore_and_poll() {
        assert_eq!(ambient_interrupted(), None, "uninstalled = never interrupted");
        let ctl = Arc::new(RunControl::new());
        {
            let _g = install_ambient(Some(Arc::clone(&ctl)));
            assert!(ambient().is_some());
            assert_eq!(ambient_interrupted(), None);
            ctl.cancel();
            assert_eq!(ambient_interrupted(), Some(Interrupt::Cancelled));
            {
                let _inner = install_ambient(None);
                assert_eq!(ambient_interrupted(), None, "inner scope masks");
            }
            assert_eq!(ambient_interrupted(), Some(Interrupt::Cancelled), "restored");
        }
        assert!(ambient().is_none(), "outer guard restored");
    }

    #[test]
    fn cancel_from_another_thread_is_visible() {
        let ctl = Arc::new(RunControl::new());
        let remote = Arc::clone(&ctl);
        let h = std::thread::spawn(move || remote.cancel());
        h.join().unwrap();
        assert_eq!(ctl.interrupted(), Some(Interrupt::Cancelled));
    }
}
