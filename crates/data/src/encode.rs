//! Encoding tables into numeric form for metrics and ML.
//!
//! * [`label_encode`] maps string/bool columns to dense integer codes
//!   (deterministic: codes assigned by first appearance).
//! * [`to_matrix`] extracts a column-major `f64` matrix plus a label vector,
//!   the input format of the `autofeat-ml` learners and `autofeat-metrics`
//!   estimators. Nulls become `NaN` (impute first if that matters).

use std::collections::HashMap;

use crate::column::Column;
use crate::error::{DataError, Result};
use crate::keydict::{KeyDict, NULL_CODE};
use crate::table::Table;
use crate::value::Key;

/// Label-encode one column: non-numeric values become integer codes in order
/// of first appearance; numeric columns are returned unchanged.
pub fn label_encode_column(col: &Column) -> Column {
    label_encode_column_with_dict(col, None)
}

/// [`label_encode_column`] with an optional ingest-built [`KeyDict`] for the
/// column. With a dictionary the per-row work collapses to an array lookup:
/// a dense `dict code → label code` remap table is filled in order of first
/// appearance, so the **output is byte-identical** to the dictionary-less
/// path (same first-appearance code assignment) without hashing a single
/// cell. Callers obtain the dictionary via `Table::key_dict_for`, which
/// already guarantees freshness.
pub fn label_encode_column_with_dict(col: &Column, dict: Option<&KeyDict>) -> Column {
    match col {
        Column::Int(_) | Column::Float(_) => col.clone(),
        Column::Bool(v) => Column::from_ints(v.iter().map(|b| b.map(i64::from))),
        Column::Str(_) => {
            if let Some(d) = dict.filter(|d| d.n_rows() == col.len()) {
                let mut remap: Vec<i64> = vec![-1; d.len()];
                let mut next = 0i64;
                let out: Vec<Option<i64>> = d
                    .row_codes()
                    .iter()
                    .map(|&c| {
                        if c == NULL_CODE {
                            return None;
                        }
                        let slot = &mut remap[c as usize];
                        if *slot < 0 {
                            *slot = next;
                            next += 1;
                        }
                        Some(*slot)
                    })
                    .collect();
                return Column::from_ints(out);
            }
            let mut codes: HashMap<Key, i64> = HashMap::new();
            let mut out: Vec<Option<i64>> = Vec::with_capacity(col.len());
            for i in 0..col.len() {
                match col.key(i) {
                    None => out.push(None),
                    Some(k) => {
                        let next = codes.len() as i64;
                        let code = *codes.entry(k).or_insert(next);
                        out.push(Some(code));
                    }
                }
            }
            Column::from_ints(out)
        }
    }
}

/// Label-encode every non-numeric column of a table, reusing ingest-built
/// key dictionaries where the table carries them.
pub fn label_encode(table: &Table) -> Result<Table> {
    let mut t = table.clone();
    let names: Vec<String> = table.column_names().iter().map(|s| s.to_string()).collect();
    for name in names {
        let col = table.column(&name)?;
        if !col.dtype().is_numeric() {
            let dict = table.key_dict_for(col).map(|d| d.as_ref());
            t = t.replace_column(&name, label_encode_column_with_dict(col, dict))?;
        }
    }
    Ok(t)
}

/// A column-major numeric matrix with named features and a label vector.
#[derive(Debug, Clone)]
pub struct Matrix {
    /// Feature names, parallel to `cols`.
    pub feature_names: Vec<String>,
    /// Column-major data: `cols[j][i]` is feature `j` of row `i`. Nulls are
    /// `NaN`.
    pub cols: Vec<Vec<f64>>,
    /// Integer class labels per row.
    pub labels: Vec<i64>,
    /// Number of rows.
    pub n_rows: usize,
}

impl Matrix {
    /// Number of features.
    pub fn n_features(&self) -> usize {
        self.cols.len()
    }

    /// Number of distinct label values.
    pub fn n_classes(&self) -> usize {
        let mut v: Vec<i64> = self.labels.clone();
        v.sort_unstable();
        v.dedup();
        v.len()
    }

    /// Restrict to a subset of features by index.
    pub fn select_features(&self, idx: &[usize]) -> Matrix {
        Matrix {
            feature_names: idx.iter().map(|&j| self.feature_names[j].clone()).collect(),
            cols: idx.iter().map(|&j| self.cols[j].clone()).collect(),
            labels: self.labels.clone(),
            n_rows: self.n_rows,
        }
    }

    /// Restrict to a subset of rows by index.
    pub fn select_rows(&self, idx: &[usize]) -> Matrix {
        Matrix {
            feature_names: self.feature_names.clone(),
            cols: self
                .cols
                .iter()
                .map(|c| idx.iter().map(|&i| c[i]).collect())
                .collect(),
            labels: idx.iter().map(|&i| self.labels[i]).collect(),
            n_rows: idx.len(),
        }
    }
}

/// Extract a numeric matrix from `table`.
///
/// `features` lists the columns to use (label-encoded when non-numeric);
/// `label` is the class column (must not appear in `features`), encoded to
/// integer codes. Rows whose label is null are dropped.
pub fn to_matrix(table: &Table, features: &[&str], label: &str) -> Result<Matrix> {
    if features.contains(&label) {
        return Err(DataError::Invalid(format!(
            "label column `{label}` must not be among the features"
        )));
    }
    let raw_label = table.column(label)?;
    let label_col =
        label_encode_column_with_dict(raw_label, table.key_dict_for(raw_label).map(|d| d.as_ref()));
    // Keep rows with a non-null label.
    let keep: Vec<usize> = (0..label_col.len())
        .filter(|&i| label_col.get_f64(i).is_some())
        .collect();
    let labels: Vec<i64> = keep
        .iter()
        .map(|&i| label_col.get_f64(i).expect("filtered non-null") as i64)
        .collect();

    let mut cols = Vec::with_capacity(features.len());
    let mut names = Vec::with_capacity(features.len());
    for &f in features {
        let raw = table.column(f)?;
        let col = label_encode_column_with_dict(raw, table.key_dict_for(raw).map(|d| d.as_ref()));
        cols.push(
            keep.iter()
                .map(|&i| col.get_f64(i).unwrap_or(f64::NAN))
                .collect::<Vec<f64>>(),
        );
        names.push(f.to_string());
    }
    Ok(Matrix { feature_names: names, cols, labels, n_rows: keep.len() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn table() -> Table {
        Table::new(
            "t",
            vec![
                ("num", Column::from_floats([Some(1.0), Some(2.0), None, Some(4.0)])),
                ("cat", Column::from_strs([Some("a"), Some("b"), Some("a"), None])),
                ("flag", Column::from_bools([Some(true), Some(false), Some(true), Some(true)])),
                ("y", Column::from_strs([Some("yes"), Some("no"), Some("yes"), None])),
            ],
        )
        .unwrap()
    }

    #[test]
    fn string_codes_by_first_appearance() {
        let c = label_encode_column(&Column::from_strs([Some("b"), Some("a"), Some("b")]));
        assert_eq!(c.get(0), Value::Int(0));
        assert_eq!(c.get(1), Value::Int(1));
        assert_eq!(c.get(2), Value::Int(0));
    }

    #[test]
    fn dict_reuse_matches_hashed_encoding_exactly() {
        // Same column, with and without an ingest-built dictionary: the
        // dictionary path must reproduce the first-appearance codes
        // byte for byte, whatever order the dictionary assigned its own.
        let vals = [Some("b"), Some("a"), None, Some("b"), Some("c"), Some("a")];
        let col = Column::from_strs(vals);
        let keyed = Table::new("t", vec![("cat", col.clone())]).unwrap().with_key_dicts();
        let kcol = keyed.column("cat").unwrap();
        let dict = keyed.key_dict_for(kcol).expect("dictionary built at ingest");
        let plain = label_encode_column(&col);
        let via_dict = label_encode_column_with_dict(kcol, Some(dict));
        assert_eq!(plain, via_dict);
        assert_eq!(plain.get(0), Value::Int(0)); // b first
        assert_eq!(plain.get(1), Value::Int(1)); // a second
        assert_eq!(plain.get(2), Value::Null);
        // A stale dictionary (row count mismatch) is ignored, not trusted.
        let shorter = Column::from_strs([Some("b"), Some("a")]);
        let enc = label_encode_column_with_dict(&shorter, Some(dict));
        assert_eq!(enc, label_encode_column(&shorter));
    }

    #[test]
    fn table_encoding_reuses_dicts() {
        let plain = label_encode(&table()).unwrap();
        let keyed = label_encode(&table().with_key_dicts()).unwrap();
        assert_eq!(plain, keyed);
    }

    #[test]
    fn matrix_is_identical_with_and_without_dicts() {
        let a = to_matrix(&table(), &["num", "cat", "flag"], "y").unwrap();
        let b = to_matrix(&table().with_key_dicts(), &["num", "cat", "flag"], "y").unwrap();
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.cols.len(), b.cols.len());
        for (ca, cb) in a.cols.iter().zip(&b.cols) {
            assert_eq!(
                ca.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                cb.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn bool_encoding() {
        let c = label_encode_column(&Column::from_bools([Some(true), Some(false), None]));
        assert_eq!(c.get(0), Value::Int(1));
        assert_eq!(c.get(1), Value::Int(0));
        assert_eq!(c.get(2), Value::Null);
    }

    #[test]
    fn numeric_columns_untouched() {
        let c = Column::from_floats([Some(1.5)]);
        assert_eq!(label_encode_column(&c), c);
    }

    #[test]
    fn table_encoding_leaves_numeric() {
        let t = label_encode(&table()).unwrap();
        assert_eq!(t.column("num").unwrap().dtype(), crate::value::DType::Float);
        assert_eq!(t.column("cat").unwrap().dtype(), crate::value::DType::Int);
    }

    #[test]
    fn matrix_drops_null_label_rows() {
        let m = to_matrix(&table(), &["num", "cat", "flag"], "y").unwrap();
        assert_eq!(m.n_rows, 3); // last row has null label
        assert_eq!(m.labels, vec![0, 1, 0]);
        assert_eq!(m.n_classes(), 2);
        assert_eq!(m.n_features(), 3);
    }

    #[test]
    fn matrix_nulls_become_nan() {
        let m = to_matrix(&table(), &["num"], "y").unwrap();
        assert!(m.cols[0][2].is_nan());
    }

    #[test]
    fn label_in_features_rejected() {
        assert!(to_matrix(&table(), &["y"], "y").is_err());
    }

    #[test]
    fn select_features_and_rows() {
        let m = to_matrix(&table(), &["num", "cat"], "y").unwrap();
        let mf = m.select_features(&[1]);
        assert_eq!(mf.feature_names, vec!["cat"]);
        let mr = m.select_rows(&[0, 2]);
        assert_eq!(mr.n_rows, 2);
        assert_eq!(mr.labels, vec![0, 0]);
    }

    #[test]
    fn missing_feature_errors() {
        assert!(to_matrix(&table(), &["ghost"], "y").is_err());
    }
}
