//! Encoding tables into numeric form for metrics and ML.
//!
//! * [`label_encode`] maps string/bool columns to dense integer codes
//!   (deterministic: codes assigned by first appearance).
//! * [`to_matrix`] extracts a column-major `f64` matrix plus a label vector,
//!   the input format of the `autofeat-ml` learners and `autofeat-metrics`
//!   estimators. Nulls become `NaN` (impute first if that matters).

use std::collections::HashMap;

use crate::column::Column;
use crate::error::{DataError, Result};
use crate::table::Table;
use crate::value::Key;

/// Label-encode one column: non-numeric values become integer codes in order
/// of first appearance; numeric columns are returned unchanged.
pub fn label_encode_column(col: &Column) -> Column {
    match col {
        Column::Int(_) | Column::Float(_) => col.clone(),
        Column::Bool(v) => Column::from_ints(v.iter().map(|b| b.map(i64::from))),
        Column::Str(_) => {
            let mut codes: HashMap<Key, i64> = HashMap::new();
            let mut out: Vec<Option<i64>> = Vec::with_capacity(col.len());
            for i in 0..col.len() {
                match col.key(i) {
                    None => out.push(None),
                    Some(k) => {
                        let next = codes.len() as i64;
                        let code = *codes.entry(k).or_insert(next);
                        out.push(Some(code));
                    }
                }
            }
            Column::from_ints(out)
        }
    }
}

/// Label-encode every non-numeric column of a table.
pub fn label_encode(table: &Table) -> Result<Table> {
    let mut t = table.clone();
    let names: Vec<String> = table.column_names().iter().map(|s| s.to_string()).collect();
    for name in names {
        let col = table.column(&name)?;
        if !col.dtype().is_numeric() {
            t = t.replace_column(&name, label_encode_column(col))?;
        }
    }
    Ok(t)
}

/// A column-major numeric matrix with named features and a label vector.
#[derive(Debug, Clone)]
pub struct Matrix {
    /// Feature names, parallel to `cols`.
    pub feature_names: Vec<String>,
    /// Column-major data: `cols[j][i]` is feature `j` of row `i`. Nulls are
    /// `NaN`.
    pub cols: Vec<Vec<f64>>,
    /// Integer class labels per row.
    pub labels: Vec<i64>,
    /// Number of rows.
    pub n_rows: usize,
}

impl Matrix {
    /// Number of features.
    pub fn n_features(&self) -> usize {
        self.cols.len()
    }

    /// Number of distinct label values.
    pub fn n_classes(&self) -> usize {
        let mut v: Vec<i64> = self.labels.clone();
        v.sort_unstable();
        v.dedup();
        v.len()
    }

    /// Restrict to a subset of features by index.
    pub fn select_features(&self, idx: &[usize]) -> Matrix {
        Matrix {
            feature_names: idx.iter().map(|&j| self.feature_names[j].clone()).collect(),
            cols: idx.iter().map(|&j| self.cols[j].clone()).collect(),
            labels: self.labels.clone(),
            n_rows: self.n_rows,
        }
    }

    /// Restrict to a subset of rows by index.
    pub fn select_rows(&self, idx: &[usize]) -> Matrix {
        Matrix {
            feature_names: self.feature_names.clone(),
            cols: self
                .cols
                .iter()
                .map(|c| idx.iter().map(|&i| c[i]).collect())
                .collect(),
            labels: idx.iter().map(|&i| self.labels[i]).collect(),
            n_rows: idx.len(),
        }
    }
}

/// Extract a numeric matrix from `table`.
///
/// `features` lists the columns to use (label-encoded when non-numeric);
/// `label` is the class column (must not appear in `features`), encoded to
/// integer codes. Rows whose label is null are dropped.
pub fn to_matrix(table: &Table, features: &[&str], label: &str) -> Result<Matrix> {
    if features.contains(&label) {
        return Err(DataError::Invalid(format!(
            "label column `{label}` must not be among the features"
        )));
    }
    let label_col = label_encode_column(table.column(label)?);
    // Keep rows with a non-null label.
    let keep: Vec<usize> = (0..label_col.len())
        .filter(|&i| label_col.get_f64(i).is_some())
        .collect();
    let labels: Vec<i64> = keep
        .iter()
        .map(|&i| label_col.get_f64(i).expect("filtered non-null") as i64)
        .collect();

    let mut cols = Vec::with_capacity(features.len());
    let mut names = Vec::with_capacity(features.len());
    for &f in features {
        let col = label_encode_column(table.column(f)?);
        cols.push(
            keep.iter()
                .map(|&i| col.get_f64(i).unwrap_or(f64::NAN))
                .collect::<Vec<f64>>(),
        );
        names.push(f.to_string());
    }
    Ok(Matrix { feature_names: names, cols, labels, n_rows: keep.len() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn table() -> Table {
        Table::new(
            "t",
            vec![
                ("num", Column::from_floats([Some(1.0), Some(2.0), None, Some(4.0)])),
                ("cat", Column::from_strs([Some("a"), Some("b"), Some("a"), None])),
                ("flag", Column::from_bools([Some(true), Some(false), Some(true), Some(true)])),
                ("y", Column::from_strs([Some("yes"), Some("no"), Some("yes"), None])),
            ],
        )
        .unwrap()
    }

    #[test]
    fn string_codes_by_first_appearance() {
        let c = label_encode_column(&Column::from_strs([Some("b"), Some("a"), Some("b")]));
        assert_eq!(c.get(0), Value::Int(0));
        assert_eq!(c.get(1), Value::Int(1));
        assert_eq!(c.get(2), Value::Int(0));
    }

    #[test]
    fn bool_encoding() {
        let c = label_encode_column(&Column::from_bools([Some(true), Some(false), None]));
        assert_eq!(c.get(0), Value::Int(1));
        assert_eq!(c.get(1), Value::Int(0));
        assert_eq!(c.get(2), Value::Null);
    }

    #[test]
    fn numeric_columns_untouched() {
        let c = Column::from_floats([Some(1.5)]);
        assert_eq!(label_encode_column(&c), c);
    }

    #[test]
    fn table_encoding_leaves_numeric() {
        let t = label_encode(&table()).unwrap();
        assert_eq!(t.column("num").unwrap().dtype(), crate::value::DType::Float);
        assert_eq!(t.column("cat").unwrap().dtype(), crate::value::DType::Int);
    }

    #[test]
    fn matrix_drops_null_label_rows() {
        let m = to_matrix(&table(), &["num", "cat", "flag"], "y").unwrap();
        assert_eq!(m.n_rows, 3); // last row has null label
        assert_eq!(m.labels, vec![0, 1, 0]);
        assert_eq!(m.n_classes(), 2);
        assert_eq!(m.n_features(), 3);
    }

    #[test]
    fn matrix_nulls_become_nan() {
        let m = to_matrix(&table(), &["num"], "y").unwrap();
        assert!(m.cols[0][2].is_nan());
    }

    #[test]
    fn label_in_features_rejected() {
        assert!(to_matrix(&table(), &["y"], "y").is_err());
    }

    #[test]
    fn select_features_and_rows() {
        let m = to_matrix(&table(), &["num", "cat"], "y").unwrap();
        let mf = m.select_features(&[1]);
        assert_eq!(mf.feature_names, vec!["cat"]);
        let mr = m.select_rows(&[0, 2]);
        assert_eq!(mr.n_rows, 2);
        assert_eq!(mr.labels, vec![0, 0]);
    }

    #[test]
    fn missing_feature_errors() {
        assert!(to_matrix(&table(), &["ghost"], "y").is_err());
    }
}
