//! Error types for the table engine.

use std::fmt;

use crate::control::Interrupt;

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, DataError>;

/// Errors produced by table-engine operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// A column name was not found in a table.
    ColumnNotFound { table: String, column: String },
    /// Two columns in the same table share a name.
    DuplicateColumn { table: String, column: String },
    /// Columns of a table have differing lengths.
    LengthMismatch { expected: usize, got: usize, column: String },
    /// A value of an unexpected type was pushed into a typed column.
    TypeMismatch { expected: &'static str, got: &'static str },
    /// A row index was out of bounds.
    RowOutOfBounds { index: usize, len: usize },
    /// CSV input could not be parsed.
    Csv { line: usize, message: String },
    /// A CSV data row had a different field count than the header
    /// (structured so callers can report expected vs got precisely).
    CsvRagged { line: usize, expected: usize, got: usize },
    /// An I/O error (message-only so the error stays `Clone + Eq`).
    Io(String),
    /// A generic invalid-argument error.
    Invalid(String),
    /// The operation was stopped cooperatively (cancel or deadline) before
    /// completing. Not a failure: callers wind down and keep partials.
    Interrupted(Interrupt),
    /// An isolated panic inside a join-index build (message-only so the
    /// error stays `Clone + Eq`).
    BuildPanicked { table: String, message: String },
}

impl DataError {
    /// The interrupt reason, when this error is a cooperative stop rather
    /// than a real failure.
    pub fn interrupt(&self) -> Option<Interrupt> {
        match self {
            DataError::Interrupted(i) => Some(*i),
            _ => None,
        }
    }
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::ColumnNotFound { table, column } => {
                write!(f, "column `{column}` not found in table `{table}`")
            }
            DataError::DuplicateColumn { table, column } => {
                write!(f, "duplicate column `{column}` in table `{table}`")
            }
            DataError::LengthMismatch { expected, got, column } => write!(
                f,
                "column `{column}` has length {got}, expected {expected}"
            ),
            DataError::TypeMismatch { expected, got } => {
                write!(f, "type mismatch: expected {expected}, got {got}")
            }
            DataError::RowOutOfBounds { index, len } => {
                write!(f, "row index {index} out of bounds for table with {len} rows")
            }
            DataError::Csv { line, message } => write!(f, "csv parse error at line {line}: {message}"),
            DataError::CsvRagged { line, expected, got } => write!(
                f,
                "csv parse error at line {line}: ragged row has {got} fields, header has {expected}"
            ),
            DataError::Io(msg) => write!(f, "io error: {msg}"),
            DataError::Invalid(msg) => write!(f, "invalid argument: {msg}"),
            DataError::Interrupted(reason) => write!(f, "interrupted: {reason}"),
            DataError::BuildPanicked { table, message } => {
                write!(f, "join-index build for table `{table}` panicked: {message}")
            }
        }
    }
}

impl std::error::Error for DataError {}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        DataError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_column_not_found() {
        let e = DataError::ColumnNotFound { table: "t".into(), column: "c".into() };
        assert_eq!(e.to_string(), "column `c` not found in table `t`");
    }

    #[test]
    fn display_length_mismatch() {
        let e = DataError::LengthMismatch { expected: 3, got: 2, column: "x".into() };
        assert!(e.to_string().contains("length 2"));
        assert!(e.to_string().contains("expected 3"));
    }

    #[test]
    fn display_csv_ragged_has_expected_vs_got() {
        let e = DataError::CsvRagged { line: 7, expected: 4, got: 2 };
        let s = e.to_string();
        assert!(s.contains("line 7"), "{s}");
        assert!(s.contains('4') && s.contains('2'), "{s}");
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let e: DataError = io.into();
        assert!(matches!(e, DataError::Io(_)));
    }
}
