//! Missing-value imputation.
//!
//! The paper (§V-B) handles missing values "by imputation with the most
//! common value corresponding to the feature" — the default here. Mean
//! imputation is provided for numeric columns as an alternative used in
//! ablations.

use crate::column::Column;
use crate::error::Result;
use crate::table::Table;
use crate::value::Value;

/// Imputation strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Replace nulls with the column mode (paper default).
    #[default]
    MostFrequent,
    /// Replace nulls with the column mean (numeric columns only; non-numeric
    /// columns fall back to the mode).
    Mean,
}

/// Fill nulls in a single column according to the strategy. Columns that are
/// entirely null are returned unchanged (there is nothing to impute from).
pub fn impute_column(col: &Column, strategy: Strategy) -> Column {
    let fill: Option<Value> = match strategy {
        Strategy::MostFrequent => col.mode(),
        Strategy::Mean => match col {
            Column::Float(_) | Column::Int(_) | Column::Bool(_) => {
                // Keep ints integral under mean imputation.
                match (col, col.mean()) {
                    (_, None) => None,
                    (Column::Int(_), Some(m)) => Some(Value::Int(m.round() as i64)),
                    (Column::Bool(_), Some(m)) => Some(Value::Bool(m >= 0.5)),
                    (_, Some(m)) => Some(Value::Float(m)),
                }
            }
            Column::Str(_) => col.mode(),
        },
    };
    let Some(fill) = fill else {
        return col.clone();
    };
    let mut out = Column::with_capacity(col.dtype(), col.len());
    for i in 0..col.len() {
        let v = col.get(i);
        let v = if v.is_null() { fill.clone() } else { v };
        out.push(v).expect("fill value matches column type");
    }
    out
}

/// Impute every column of a table.
pub fn impute_table(table: &Table, strategy: Strategy) -> Result<Table> {
    let mut t = table.clone();
    let names: Vec<String> = table.column_names().iter().map(|s| s.to_string()).collect();
    for name in names {
        let col = impute_column(table.column(&name)?, strategy);
        t = t.replace_column(&name, col)?;
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn most_frequent_fills_mode() {
        let c = Column::from_ints([Some(5), Some(5), None, Some(2)]);
        let f = impute_column(&c, Strategy::MostFrequent);
        assert_eq!(f.get(2), Value::Int(5));
        assert_eq!(f.null_count(), 0);
    }

    #[test]
    fn mean_fills_numeric() {
        let c = Column::from_floats([Some(1.0), None, Some(3.0)]);
        let f = impute_column(&c, Strategy::Mean);
        assert_eq!(f.get(1), Value::Float(2.0));
    }

    #[test]
    fn mean_on_ints_rounds() {
        let c = Column::from_ints([Some(1), None, Some(4)]);
        let f = impute_column(&c, Strategy::Mean);
        assert_eq!(f.get(1), Value::Int(3)); // 2.5 rounds to 3
    }

    #[test]
    fn mean_on_strings_falls_back_to_mode() {
        let c = Column::from_strs([Some("x"), Some("x"), None]);
        let f = impute_column(&c, Strategy::Mean);
        assert_eq!(f.get(2), Value::str("x"));
    }

    #[test]
    fn all_null_column_unchanged() {
        let c = Column::from_ints([None, None]);
        let f = impute_column(&c, Strategy::MostFrequent);
        assert_eq!(f.null_count(), 2);
    }

    #[test]
    fn table_imputation_covers_all_columns() {
        let t = Table::new(
            "t",
            vec![
                ("a", Column::from_ints([Some(1), None])),
                ("b", Column::from_strs([None, Some("y")])),
            ],
        )
        .unwrap();
        let f = impute_table(&t, Strategy::MostFrequent).unwrap();
        assert_eq!(f.null_ratio(), 0.0);
    }

    #[test]
    fn non_null_values_untouched() {
        let c = Column::from_floats([Some(9.0), None]);
        let f = impute_column(&c, Strategy::Mean);
        assert_eq!(f.get(0), Value::Float(9.0));
    }
}
