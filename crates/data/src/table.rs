//! Tables: named collections of equal-length columns.

use std::collections::HashMap;
use std::hash::Hasher;
use std::sync::Arc;

use crate::column::Column;
use crate::error::{DataError, Result};
use crate::keydict::KeyDict;
use crate::schema::{Field, Schema};
use crate::stable_hash::StableHasher;
use crate::value::Value;

/// An immutable-by-convention, in-memory table.
///
/// Column names are unique within a table. Most operations return new
/// tables; columns are `Clone` (strings are `Arc`-backed) so projections are
/// cheap.
///
/// ## Key metadata
///
/// Lake-resident tables optionally carry **key metadata** built at ingest by
/// [`Table::with_key_dicts`]: a per-column [`KeyDict`] (dense `u32` join-key
/// codes) and precomputed per-row content fingerprints. Both are derived
/// caches — equality ([`PartialEq`]) deliberately ignores them, so a table
/// that carries metadata compares equal to one with identical data that does
/// not. Operations that produce new columns or rows (`select`, `take`,
/// `with_column`, `replace_column`, …) conservatively drop or invalidate the
/// affected metadata; consumers re-validate freshness positionally via
/// [`Table::key_dict_for`] before trusting a dictionary.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    fields: Vec<Field>,
    columns: Vec<Column>,
    index: HashMap<String, usize>,
    /// Per-column join-key dictionaries (ingest-built; `None` = absent).
    keyed: Vec<Option<Arc<KeyDict>>>,
    /// Per-row content fingerprints over all columns, matching
    /// `join::content_fingerprint` byte for byte. Invalidated (set to
    /// `None`) whenever the column set or any column's data changes.
    row_fps: Option<Arc<Vec<u64>>>,
}

impl PartialEq for Table {
    /// Data equality: name, schema, and cell contents. Key metadata is a
    /// derived cache and never participates — bit-identity assertions across
    /// cached/uncached/dictionary-coded execution paths compare *data*.
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name && self.fields == other.fields && self.columns == other.columns
    }
}

impl Table {
    /// Build a table from `(name, column)` pairs, validating uniqueness and
    /// equal lengths.
    pub fn new(
        name: impl Into<String>,
        columns: Vec<(impl Into<String>, Column)>,
    ) -> Result<Self> {
        let name = name.into();
        let mut fields = Vec::with_capacity(columns.len());
        let mut cols = Vec::with_capacity(columns.len());
        let mut index = HashMap::with_capacity(columns.len());
        let mut n_rows: Option<usize> = None;
        for (cname, col) in columns {
            let cname = cname.into();
            if index.contains_key(&cname) {
                return Err(DataError::DuplicateColumn { table: name, column: cname });
            }
            match n_rows {
                None => n_rows = Some(col.len()),
                Some(n) if n != col.len() => {
                    return Err(DataError::LengthMismatch {
                        expected: n,
                        got: col.len(),
                        column: cname,
                    })
                }
                _ => {}
            }
            index.insert(cname.clone(), cols.len());
            fields.push(Field::new(cname, col.dtype()));
            cols.push(col);
        }
        let keyed = vec![None; cols.len()];
        Ok(Table { name, fields, columns: cols, index, keyed, row_fps: None })
    }

    /// An empty table (zero columns, zero rows).
    pub fn empty(name: impl Into<String>) -> Self {
        Table {
            name: name.into(),
            fields: Vec::new(),
            columns: Vec::new(),
            index: HashMap::new(),
            keyed: Vec::new(),
            row_fps: None,
        }
    }

    /// Build key metadata for every column: a per-column [`KeyDict`] and the
    /// per-row content fingerprints the join layer's representative picks
    /// use. Called once at ingest (CSV load, datagen) — the cost is one
    /// hash pass over the table plus one dictionary build per column, paid
    /// outside any join or scoring hot path.
    pub fn with_key_dicts(mut self) -> Table {
        let n = self.n_rows();
        let mut fps = Vec::with_capacity(n);
        for row in 0..n {
            let mut h = StableHasher::new();
            for c in &self.columns {
                c.hash_cell_into(row, &mut h);
            }
            fps.push(h.finish());
        }
        self.row_fps = Some(Arc::new(fps));
        self.keyed = self.columns.iter().map(|c| Some(Arc::new(KeyDict::build(c)))).collect();
        self
    }

    /// Drop all key metadata (dictionaries and row fingerprints). The data
    /// is untouched; subsequent joins fall back to the hashed key path.
    pub fn strip_key_meta(mut self) -> Table {
        self.keyed = vec![None; self.columns.len()];
        self.row_fps = None;
        self
    }

    /// Whether this table carries ingest-built key metadata (row
    /// fingerprints; individual dictionaries may still be absent).
    pub fn has_key_meta(&self) -> bool {
        self.row_fps.is_some()
    }

    /// The key dictionary for `col`, resolved **positionally**: `col` must
    /// be one of this table's columns (payload-pointer identity, not name
    /// lookup, so a borrowed `&Column` from any accessor resolves). Returns
    /// `None` when the column carries no dictionary or the dictionary is
    /// stale (row count mismatch after a data-changing operation).
    pub fn key_dict_for(&self, col: &Column) -> Option<&Arc<KeyDict>> {
        let i = self.columns.iter().position(|c| c.shares_payload(col))?;
        self.keyed.get(i)?.as_ref().filter(|d| d.n_rows() == col.len())
    }

    /// The key dictionary of the column at position `i`, if fresh.
    pub fn key_dict_at(&self, i: usize) -> Option<&Arc<KeyDict>> {
        self.keyed.get(i)?.as_ref().filter(|d| d.n_rows() == self.columns[i].len())
    }

    /// Ingest-built per-row content fingerprints (hash of every cell in
    /// column order), or `None` when absent or invalidated.
    pub fn row_fingerprints(&self) -> Option<&[u64]> {
        self.row_fps.as_ref().map(|v| v.as_slice())
    }

    /// The shared fingerprint vector itself — coded join indexes hold an
    /// `Arc` clone instead of copying fingerprints per duplicate row, so a
    /// retained index stays small (the vector is charged to
    /// [`key_meta_bytes`](Table::key_meta_bytes), not the cache budget).
    pub(crate) fn row_fps_arc(&self) -> Option<&Arc<Vec<u64>>> {
        self.row_fps.as_ref()
    }

    /// Approximate heap footprint of the key metadata in bytes, for
    /// lake-level observability (dictionaries are lake-owned and shared, so
    /// they are accounted here, not against the join-index cache budget).
    pub fn key_meta_bytes(&self) -> usize {
        let dicts: usize = self
            .keyed
            .iter()
            .flatten()
            .map(|d| d.resident_bytes())
            .sum();
        let fps = self
            .row_fps
            .as_ref()
            .map_or(0, |v| v.capacity() * std::mem::size_of::<u64>());
        dicts + fps
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rename the table (builder style).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.columns.first().map_or(0, Column::len)
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }

    /// The schema (field list) of the table.
    pub fn schema(&self) -> Schema {
        Schema::new(self.fields.clone())
    }

    /// Column names in order.
    pub fn column_names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name.as_str()).collect()
    }

    /// Whether a column exists.
    pub fn has_column(&self, name: &str) -> bool {
        self.index.contains_key(name)
    }

    /// A column by name.
    pub fn column(&self, name: &str) -> Result<&Column> {
        self.index
            .get(name)
            .map(|&i| &self.columns[i])
            .ok_or_else(|| DataError::ColumnNotFound {
                table: self.name.clone(),
                column: name.to_string(),
            })
    }

    /// A column by position.
    pub fn column_at(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    /// Field by position.
    pub fn field_at(&self, i: usize) -> &Field {
        &self.fields[i]
    }

    /// A single cell.
    pub fn value(&self, column: &str, row: usize) -> Result<Value> {
        self.column(column)?.try_get(row)
    }

    /// Project to a subset of columns, in the given order.
    pub fn select(&self, names: &[&str]) -> Result<Table> {
        let mut cols = Vec::with_capacity(names.len());
        for &n in names {
            cols.push((n.to_string(), self.column(n)?.clone()));
        }
        Table::new(self.name.clone(), cols)
    }

    /// Drop a set of columns (ignores names that do not exist).
    pub fn drop_columns(&self, names: &[&str]) -> Table {
        let keep: Vec<(String, Column)> = self
            .fields
            .iter()
            .zip(&self.columns)
            .filter(|(f, _)| !names.contains(&f.name.as_str()))
            .map(|(f, c)| (f.name.clone(), c.clone()))
            .collect();
        Table::new(self.name.clone(), keep).expect("dropping columns preserves invariants")
    }

    /// Append a column.
    pub fn with_column(&self, name: impl Into<String>, col: Column) -> Result<Table> {
        let name = name.into();
        if self.has_column(&name) {
            return Err(DataError::DuplicateColumn { table: self.name.clone(), column: name });
        }
        if !self.columns.is_empty() && col.len() != self.n_rows() {
            return Err(DataError::LengthMismatch {
                expected: self.n_rows(),
                got: col.len(),
                column: name,
            });
        }
        let mut t = self.clone();
        t.index.insert(name.clone(), t.columns.len());
        t.fields.push(Field::new(name, col.dtype()));
        t.columns.push(col);
        // Existing dictionaries stay valid (their payloads are unchanged),
        // but row fingerprints cover every cell of a row — a new column
        // changes them, so they must be recomputed, not reused.
        t.keyed.push(None);
        t.row_fps = None;
        Ok(t)
    }

    /// Rename a column.
    pub fn rename_column(&self, from: &str, to: impl Into<String>) -> Result<Table> {
        let to = to.into();
        let i = *self.index.get(from).ok_or_else(|| DataError::ColumnNotFound {
            table: self.name.clone(),
            column: from.to_string(),
        })?;
        if self.has_column(&to) && to != from {
            return Err(DataError::DuplicateColumn { table: self.name.clone(), column: to });
        }
        let mut t = self.clone();
        t.index.remove(from);
        t.index.insert(to.clone(), i);
        t.fields[i].name = to;
        Ok(t)
    }

    /// Prefix every column name with `prefix` + `.` (used when joining so
    /// right-hand columns stay distinguishable). Columns already containing
    /// the prefix keep it once.
    pub fn prefix_columns(&self, prefix: &str) -> Table {
        let cols: Vec<(String, Column)> = self
            .fields
            .iter()
            .zip(&self.columns)
            .map(|(f, c)| {
                let name = if f.name.starts_with(&format!("{prefix}.")) {
                    f.name.clone()
                } else {
                    format!("{prefix}.{}", f.name)
                };
                (name, c.clone())
            })
            .collect();
        Table::new(self.name.clone(), cols).expect("prefixing preserves invariants")
    }

    /// Gather rows by index into a new table.
    pub fn take(&self, indices: &[usize]) -> Table {
        let cols: Vec<(String, Column)> = self
            .fields
            .iter()
            .zip(&self.columns)
            .map(|(f, c)| (f.name.clone(), c.take(indices)))
            .collect();
        Table::new(self.name.clone(), cols).expect("take preserves invariants")
    }

    /// First `n` rows.
    pub fn head(&self, n: usize) -> Table {
        let n = n.min(self.n_rows());
        let idx: Vec<usize> = (0..n).collect();
        self.take(&idx)
    }

    /// A full row as values.
    pub fn row(&self, i: usize) -> Result<Vec<Value>> {
        if i >= self.n_rows() {
            return Err(DataError::RowOutOfBounds { index: i, len: self.n_rows() });
        }
        Ok(self.columns.iter().map(|c| c.get(i)).collect())
    }

    /// Overall fraction of null cells across the whole table (zero when the
    /// table has no cells).
    pub fn null_ratio(&self) -> f64 {
        let cells = self.n_rows() * self.n_cols();
        if cells == 0 {
            return 0.0;
        }
        let nulls: usize = self.columns.iter().map(Column::null_count).sum();
        nulls as f64 / cells as f64
    }

    /// Replace a column's data in place (same length required).
    pub fn replace_column(&self, name: &str, col: Column) -> Result<Table> {
        let i = *self.index.get(name).ok_or_else(|| DataError::ColumnNotFound {
            table: self.name.clone(),
            column: name.to_string(),
        })?;
        if col.len() != self.n_rows() {
            return Err(DataError::LengthMismatch {
                expected: self.n_rows(),
                got: col.len(),
                column: name.to_string(),
            });
        }
        let mut t = self.clone();
        t.fields[i].dtype = col.dtype();
        t.columns[i] = col;
        t.keyed[i] = None;
        t.row_fps = None;
        Ok(t)
    }
}

impl std::fmt::Display for Table {
    /// Render the first rows as an aligned text table (up to 10 rows and 8
    /// columns; wider/longer tables are elided with `…`).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        const MAX_ROWS: usize = 10;
        const MAX_COLS: usize = 8;
        const MAX_WIDTH: usize = 18;
        let n_cols = self.n_cols().min(MAX_COLS);
        let n_rows = self.n_rows().min(MAX_ROWS);
        let clip = |s: String| {
            if s.len() > MAX_WIDTH {
                format!("{}…", &s[..MAX_WIDTH - 1])
            } else {
                s
            }
        };
        // Column widths from header + shown cells.
        let mut cells: Vec<Vec<String>> = Vec::with_capacity(n_rows + 1);
        let mut header: Vec<String> = (0..n_cols)
            .map(|c| clip(self.fields[c].name.clone()))
            .collect();
        if self.n_cols() > MAX_COLS {
            header.push("…".into());
        }
        cells.push(header);
        for r in 0..n_rows {
            let mut row: Vec<String> = (0..n_cols)
                .map(|c| clip(self.columns[c].get(r).to_string()))
                .collect();
            if self.n_cols() > MAX_COLS {
                row.push("…".into());
            }
            cells.push(row);
        }
        let widths: Vec<usize> = (0..cells[0].len())
            .map(|c| cells.iter().map(|row| row[c].len()).max().unwrap_or(1))
            .collect();
        writeln!(f, "{} [{} rows x {} cols]", self.name, self.n_rows(), self.n_cols())?;
        for (i, row) in cells.iter().enumerate() {
            let line: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(cell, w)| format!("{cell:>w$}"))
                .collect();
            writeln!(f, "  {}", line.join("  "))?;
            if i == 0 {
                writeln!(f, "  {}", widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>().join("  "))?;
            }
        }
        if self.n_rows() > MAX_ROWS {
            writeln!(f, "  … ({} more rows)", self.n_rows() - MAX_ROWS)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DType;

    fn sample() -> Table {
        Table::new(
            "t",
            vec![
                ("id", Column::from_ints([Some(1), Some(2), Some(3)])),
                ("x", Column::from_floats([Some(0.5), None, Some(1.5)])),
                ("s", Column::from_strs([Some("a"), Some("b"), None])),
            ],
        )
        .unwrap()
    }

    #[test]
    fn dimensions() {
        let t = sample();
        assert_eq!(t.n_rows(), 3);
        assert_eq!(t.n_cols(), 3);
        assert_eq!(t.column_names(), vec!["id", "x", "s"]);
    }

    #[test]
    fn duplicate_column_rejected() {
        let r = Table::new(
            "t",
            vec![
                ("a", Column::from_ints([Some(1)])),
                ("a", Column::from_ints([Some(2)])),
            ],
        );
        assert!(matches!(r, Err(DataError::DuplicateColumn { .. })));
    }

    #[test]
    fn length_mismatch_rejected() {
        let r = Table::new(
            "t",
            vec![
                ("a", Column::from_ints([Some(1)])),
                ("b", Column::from_ints([Some(1), Some(2)])),
            ],
        );
        assert!(matches!(r, Err(DataError::LengthMismatch { .. })));
    }

    #[test]
    fn select_projects_in_order() {
        let t = sample().select(&["s", "id"]).unwrap();
        assert_eq!(t.column_names(), vec!["s", "id"]);
    }

    #[test]
    fn select_missing_column_errors() {
        assert!(sample().select(&["nope"]).is_err());
    }

    #[test]
    fn drop_columns_ignores_missing() {
        let t = sample().drop_columns(&["x", "ghost"]);
        assert_eq!(t.column_names(), vec!["id", "s"]);
    }

    #[test]
    fn with_column_appends() {
        let t = sample()
            .with_column("y", Column::from_bools([Some(true), None, Some(false)]))
            .unwrap();
        assert_eq!(t.n_cols(), 4);
        assert_eq!(t.column("y").unwrap().dtype(), DType::Bool);
    }

    #[test]
    fn with_column_rejects_duplicates_and_bad_length() {
        let t = sample();
        assert!(t.with_column("id", Column::from_ints([Some(1), Some(2), Some(3)])).is_err());
        assert!(t.with_column("z", Column::from_ints([Some(1)])).is_err());
    }

    #[test]
    fn rename_column_works() {
        let t = sample().rename_column("x", "feature_x").unwrap();
        assert!(t.has_column("feature_x"));
        assert!(!t.has_column("x"));
        // Index still resolves after rename.
        assert_eq!(t.column("feature_x").unwrap().len(), 3);
    }

    #[test]
    fn prefix_columns_is_idempotent() {
        let t = sample().prefix_columns("t");
        assert_eq!(t.column_names(), vec!["t.id", "t.x", "t.s"]);
        let t2 = t.prefix_columns("t");
        assert_eq!(t2.column_names(), vec!["t.id", "t.x", "t.s"]);
    }

    #[test]
    fn take_and_head() {
        let t = sample().take(&[2, 0]);
        assert_eq!(t.value("id", 0).unwrap(), Value::Int(3));
        let h = sample().head(2);
        assert_eq!(h.n_rows(), 2);
        // head larger than table is the whole table
        assert_eq!(sample().head(10).n_rows(), 3);
    }

    #[test]
    fn null_ratio_counts_all_cells() {
        let t = sample();
        // 2 nulls out of 9 cells
        assert!((t.null_ratio() - 2.0 / 9.0).abs() < 1e-12);
        assert_eq!(Table::empty("e").null_ratio(), 0.0);
    }

    #[test]
    fn row_access() {
        let t = sample();
        let r = t.row(1).unwrap();
        assert_eq!(r[0], Value::Int(2));
        assert_eq!(r[1], Value::Null);
        assert!(t.row(5).is_err());
    }

    #[test]
    fn display_shows_header_and_rows() {
        let s = sample().to_string();
        assert!(s.contains("t [3 rows x 3 cols]"));
        assert!(s.contains("id"));
        assert!(s.contains("alice") || s.contains('a')); // cell content
        assert!(s.lines().count() >= 5);
    }

    #[test]
    fn display_elides_wide_and_long_tables() {
        let cols: Vec<(String, Column)> = (0..12)
            .map(|c| {
                (
                    format!("col{c}"),
                    Column::from_ints((0..20).map(Some).collect::<Vec<_>>()),
                )
            })
            .collect();
        let t = Table::new("wide", cols).unwrap();
        let s = t.to_string();
        assert!(s.contains('…'));
        assert!(s.contains("more rows"));
    }

    #[test]
    fn key_meta_builds_and_is_ignored_by_equality() {
        let plain = sample();
        let keyed = sample().with_key_dicts();
        assert!(keyed.has_key_meta());
        assert!(!plain.has_key_meta());
        assert_eq!(plain, keyed, "key metadata must not affect data equality");
        assert_eq!(keyed.row_fingerprints().unwrap().len(), 3);
        assert!(keyed.key_meta_bytes() > 0);
        let id = keyed.column("id").unwrap();
        let dict = keyed.key_dict_for(id).expect("id column has a dictionary");
        assert_eq!(dict.len(), 3);
        // A column from a different table never resolves.
        assert!(keyed.key_dict_for(plain.column("id").unwrap()).is_none());
        assert!(!keyed.clone().strip_key_meta().has_key_meta());
    }

    #[test]
    fn data_changes_invalidate_key_meta() {
        let keyed = sample().with_key_dicts();
        let widened = keyed
            .with_column("y", Column::from_ints([Some(1), Some(2), Some(3)]))
            .unwrap();
        // Fingerprints cover every cell of a row: gone after adding a column.
        assert!(widened.row_fingerprints().is_none());
        // Untouched columns keep their (payload-identical) dictionaries.
        assert!(widened.key_dict_for(widened.column("id").unwrap()).is_some());
        assert!(widened.key_dict_for(widened.column("y").unwrap()).is_none());
        let replaced = keyed
            .replace_column("id", Column::from_ints([Some(7), Some(8), Some(9)]))
            .unwrap();
        assert!(replaced.key_dict_for(replaced.column("id").unwrap()).is_none());
        // Renames touch no data: metadata survives.
        let renamed = keyed.rename_column("id", "key").unwrap();
        assert!(renamed.has_key_meta());
        assert!(renamed.key_dict_for(renamed.column("key").unwrap()).is_some());
    }

    #[test]
    fn replace_column_changes_dtype() {
        let t = sample()
            .replace_column("id", Column::from_strs([Some("a"), Some("b"), Some("c")]))
            .unwrap();
        assert_eq!(t.column("id").unwrap().dtype(), DType::Str);
        assert!(sample().replace_column("id", Column::from_ints([Some(1)])).is_err());
    }
}
