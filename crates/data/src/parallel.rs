//! Deterministic fan-out over scoped worker threads.
//!
//! Shared by the ML ensembles (tree fitting) and the discovery BFS
//! (per-level join evaluation). Work is split by item index and every item
//! must be a pure function of its index, so the output is bit-identical at
//! any worker count — parallelism changes wall-clock time, never results.
//!
//! Worker-count resolution honours the `AUTOFEAT_THREADS` environment
//! variable (`0`, unset, or unparsable = auto-detect via
//! `available_parallelism`), resolved **once per process** — the variable
//! is read and parsed on the first [`n_workers`] call and cached in a
//! `OnceLock`, so steady-state resolution is a single atomic load. Callers
//! with their own configuration knob (e.g. `AutoFeatConfig::threads`)
//! should resolve that knob first and pass an explicit count to
//! [`build_indexed_with`]: config-first, environment as the fallback.
//!
//! ## Resilience
//!
//! [`run_indexed_ctl`] is the fault-aware variant: each item is wrapped in
//! `catch_unwind` (a panicking item becomes a structured [`WorkerPanic`]
//! carrying the item index and the pipeline phase, not a process abort)
//! and the run's [`RunControl`] is polled before every item (interrupted
//! items come back as [`ItemOutcome::Skipped`]). [`build_indexed_with`]
//! keeps its infallible signature for callers without failure handling; a
//! worker panic there is resumed on the calling thread with the enriched
//! context attached.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, OnceLock};

use crossbeam::thread;

use crate::control::{self, Interrupt, RunControl};

/// Parse an `AUTOFEAT_THREADS`-style value: a positive integer is an
/// explicit count; `0`, `None`, or unparsable input means auto-detect via
/// `available_parallelism`.
pub fn parse_worker_count(raw: Option<&str>) -> usize {
    match raw.and_then(|v| v.trim().parse::<usize>().ok()) {
        Some(n) if n > 0 => n,
        // 0 or absent/invalid = auto.
        _ => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
    }
}

/// Number of worker threads to use when the caller has no explicit
/// configuration: the `AUTOFEAT_THREADS` environment variable when set to a
/// positive integer, otherwise the machine's available parallelism.
/// Resolved once per process; later changes to the variable have no effect.
pub fn n_workers() -> usize {
    static RESOLVED: OnceLock<usize> = OnceLock::new();
    *RESOLVED
        .get_or_init(|| parse_worker_count(std::env::var("AUTOFEAT_THREADS").ok().as_deref()))
}

/// How one fan-out item ended.
#[derive(Debug)]
pub enum ItemOutcome<T> {
    /// The item's closure returned normally.
    Done(T),
    /// The item's closure panicked; the panic was caught and structured.
    Panicked(WorkerPanic),
    /// The item was never run: the [`RunControl`] was interrupted before
    /// its turn.
    Skipped(Interrupt),
}

impl<T> ItemOutcome<T> {
    /// The value, if the item completed.
    pub fn done(self) -> Option<T> {
        match self {
            ItemOutcome::Done(v) => Some(v),
            _ => None,
        }
    }
}

/// A caught worker panic, with enough context to act on: which item, in
/// which pipeline phase, saying what.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerPanic {
    /// Index of the item whose closure panicked.
    pub item: usize,
    /// Dotted span path of the phase that spawned the fan-out (`""` when
    /// tracing is disabled).
    pub phase: String,
    /// The panic payload, stringified (`&str` and `String` payloads pass
    /// through; anything else becomes a placeholder).
    pub message: String,
}

impl WorkerPanic {
    fn render(&self) -> String {
        if self.phase.is_empty() {
            format!("worker panic on item {}: {}", self.item, self.message)
        } else {
            format!(
                "worker panic on item {} in phase `{}`: {}",
                self.item, self.phase, self.message
            )
        }
    }
}

impl std::fmt::Display for WorkerPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

pub(crate) fn payload_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run `make(i)` for `i in 0..n_items` across `workers` scoped threads,
/// preserving index order, isolating panics, and honouring `ctl`.
///
/// * Before each item the control (when given) is polled; once it reports
///   an interrupt, that worker's remaining items are [`ItemOutcome::
///   Skipped`] — already-finished items are unaffected, so the caller gets
///   a partial-but-valid prefix per chunk.
/// * Each item runs under `catch_unwind`: a panic is caught and returned
///   as [`ItemOutcome::Panicked`] with the item index and current phase
///   span path attached. One poisoned item never takes down its siblings
///   or the process.
/// * `ctl` is installed as the ambient control in every worker, so joins
///   and index builds inside `make` can poll it too.
///
/// `make` must be pure given `i` for the `Done` outcomes to be
/// bit-identical at any worker count (panics and skips are, by nature,
/// only deterministic when their cause is).
pub fn run_indexed_ctl<T, F>(
    workers: usize,
    n_items: usize,
    ctl: Option<&Arc<RunControl>>,
    make: F,
) -> Vec<ItemOutcome<T>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers.max(1).min(n_items.max(1));
    let make_ref = &make;
    let phase = autofeat_obs::current_span_path();
    let run_item = |i: usize| -> ItemOutcome<T> {
        if let Some(reason) = ctl.and_then(|c| c.interrupted()) {
            return ItemOutcome::Skipped(reason);
        }
        match catch_unwind(AssertUnwindSafe(|| make_ref(i))) {
            Ok(v) => ItemOutcome::Done(v),
            Err(payload) => ItemOutcome::Panicked(WorkerPanic {
                item: i,
                phase: phase.clone(),
                message: payload_message(payload),
            }),
        }
    };
    if workers <= 1 || n_items <= 1 {
        let _ctl_guard = control::install_ambient(ctl.cloned());
        return (0..n_items).map(run_item).collect();
    }
    let mut slots: Vec<Option<ItemOutcome<T>>> = (0..n_items).map(|_| None).collect();
    let run_ref = &run_item;
    let chunk_len = n_items.div_ceil(workers);
    // Carry the caller's tracing scope into the workers, so spans recorded
    // inside `make` nest under the phase that spawned the fan-out. Inert
    // (one thread-local read, no allocation per worker) when tracing is
    // disabled.
    let obs_scope = autofeat_obs::ambient_scope();
    let scope_result = thread::scope(|s| {
        for (w, chunk) in slots.chunks_mut(chunk_len).enumerate() {
            let start = w * chunk_len;
            let obs_scope = obs_scope.clone();
            s.spawn(move |_| {
                let _obs = obs_scope.enter();
                let _ctl_guard = control::install_ambient(ctl.cloned());
                for (off, slot) in chunk.iter_mut().enumerate() {
                    *slot = Some(run_ref(start + off));
                }
            });
        }
    });
    // Worker closures cannot unwind (every panic is caught per item), so a
    // scope error would mean a panic in the harness itself.
    scope_result.expect("fan-out scope failed outside item closures");
    slots
        .into_iter()
        .map(|s| s.expect("every slot filled"))
        .collect()
}

/// Build `n_items` values with `make(i)` across `workers` scoped threads,
/// preserving index order. `make` must be pure given `i` (all randomness
/// derived from `i`), so the result is identical for every `workers` value.
///
/// A panicking item does not abort the process from a worker thread:
/// the panic is caught, enriched with the item index and phase span path,
/// and resumed on the calling thread.
pub fn build_indexed_with<T, F>(workers: usize, n_items: usize, make: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let mut out = Vec::with_capacity(n_items);
    for outcome in run_indexed_ctl(workers, n_items, None, make) {
        match outcome {
            ItemOutcome::Done(v) => out.push(v),
            ItemOutcome::Panicked(p) => std::panic::resume_unwind(Box::new(p.render())),
            ItemOutcome::Skipped(_) => unreachable!("no control given, nothing can skip"),
        }
    }
    out
}

/// [`build_indexed_with`] at the default worker count ([`n_workers`]).
pub fn build_indexed<T, F>(n_items: usize, make: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    build_indexed_with(n_workers(), n_items, make)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_index_order() {
        let v = build_indexed(100, |i| i * 2);
        assert_eq!(v, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_item_sequential_path() {
        assert_eq!(build_indexed(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn zero_items() {
        let v: Vec<usize> = build_indexed(0, |i| i);
        assert!(v.is_empty());
    }

    #[test]
    fn matches_sequential_for_any_size_and_worker_count() {
        for workers in [1usize, 2, 3, 8, 64] {
            for n in [2usize, 3, 7, 8, 9, 33] {
                let par = build_indexed_with(workers, n, |i| i * i);
                let seq: Vec<usize> = (0..n).map(|i| i * i).collect();
                assert_eq!(par, seq, "workers = {workers}, n = {n}");
            }
        }
    }

    #[test]
    fn worker_count_parsing_is_config_shaped() {
        // `n_workers()` itself resolves once per process (other tests may
        // have fixed its value already), so the contract is asserted on the
        // parser it delegates to.
        assert_eq!(parse_worker_count(Some("3")), 3);
        assert_eq!(parse_worker_count(Some(" 12 ")), 12);
        let auto = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        assert_eq!(parse_worker_count(Some("0")), auto, "0 = auto");
        assert_eq!(parse_worker_count(Some("not-a-number")), auto);
        assert_eq!(parse_worker_count(None), auto);
        assert!(n_workers() >= 1);
        assert_eq!(n_workers(), n_workers(), "resolution is stable");
    }

    #[test]
    fn panicking_item_is_isolated_and_structured() {
        for workers in [1usize, 4] {
            let outcomes = run_indexed_ctl(workers, 8, None, |i| {
                if i == 5 {
                    panic!("injected fault: item five");
                }
                i * 10
            });
            assert_eq!(outcomes.len(), 8);
            for (i, o) in outcomes.iter().enumerate() {
                match o {
                    ItemOutcome::Done(v) => assert_eq!(*v, i * 10),
                    ItemOutcome::Panicked(p) => {
                        assert_eq!(i, 5, "only item 5 panics (workers = {workers})");
                        assert_eq!(p.item, 5);
                        assert!(p.message.contains("item five"), "{p:?}");
                    }
                    ItemOutcome::Skipped(_) => panic!("nothing should skip"),
                }
            }
        }
    }

    #[test]
    fn panic_context_includes_phase_span_path() {
        let tracer = autofeat_obs::Tracer::enabled();
        let outcomes = autofeat_obs::with_tracer(&tracer, || {
            let _s = autofeat_obs::span("level");
            run_indexed_ctl(2, 4, None, |i| {
                if i == 2 {
                    panic!("boom");
                }
                i
            })
        });
        let p = outcomes
            .iter()
            .find_map(|o| match o {
                ItemOutcome::Panicked(p) => Some(p),
                _ => None,
            })
            .expect("item 2 panicked");
        assert_eq!(p.phase, "level");
        assert!(p.to_string().contains("item 2 in phase `level`"), "{p}");
    }

    #[test]
    fn build_indexed_resumes_panic_with_context() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            build_indexed_with(2, 6, |i| {
                if i == 3 {
                    panic!("kaboom");
                }
                i
            })
        }));
        let payload = caught.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("worker panic on item 3"), "{msg}");
        assert!(msg.contains("kaboom"), "{msg}");
    }

    #[test]
    fn cancelled_control_skips_remaining_items() {
        let ctl = Arc::new(RunControl::new());
        ctl.cancel();
        let outcomes = run_indexed_ctl(4, 10, Some(&ctl), |i| i);
        assert!(
            outcomes.iter().all(|o| matches!(o, ItemOutcome::Skipped(Interrupt::Cancelled))),
            "pre-cancelled control skips every item"
        );
    }

    #[test]
    fn expired_deadline_skips_items() {
        let ctl = Arc::new(RunControl::new());
        ctl.arm_budget(std::time::Duration::ZERO);
        let outcomes = run_indexed_ctl(2, 6, Some(&ctl), |i| i);
        assert!(outcomes
            .iter()
            .all(|o| matches!(o, ItemOutcome::Skipped(Interrupt::DeadlineExceeded))));
    }

    #[test]
    fn workers_see_ambient_control() {
        let ctl = Arc::new(RunControl::new());
        let outcomes = run_indexed_ctl(3, 6, Some(&ctl), |_| control::ambient().is_some());
        assert!(outcomes.into_iter().all(|o| o.done() == Some(true)));
        assert!(control::ambient().is_none(), "caller thread restored");
    }
}
