//! Deterministic fan-out over scoped worker threads.
//!
//! Shared by the ML ensembles (tree fitting) and the discovery BFS
//! (per-level join evaluation). Work is split by item index and every item
//! must be a pure function of its index, so the output is bit-identical at
//! any worker count — parallelism changes wall-clock time, never results.
//!
//! Worker-count resolution honours the `AUTOFEAT_THREADS` environment
//! variable (`0`, unset, or unparsable = auto-detect via
//! `available_parallelism`). Callers with their own configuration knob
//! (e.g. `AutoFeatConfig::threads`) should resolve that knob first and pass
//! an explicit count to [`build_indexed_with`].

use crossbeam::thread;

/// Number of worker threads to use when the caller has no explicit
/// configuration: the `AUTOFEAT_THREADS` environment variable when set to a
/// positive integer, otherwise the machine's available parallelism.
pub fn n_workers() -> usize {
    match std::env::var("AUTOFEAT_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
    {
        Some(n) if n > 0 => n,
        // 0 or absent/invalid = auto.
        _ => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
    }
}

/// Build `n_items` values with `make(i)` across `workers` scoped threads,
/// preserving index order. `make` must be pure given `i` (all randomness
/// derived from `i`), so the result is identical for every `workers` value.
pub fn build_indexed_with<T, F>(workers: usize, n_items: usize, make: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers.max(1).min(n_items.max(1));
    if workers <= 1 || n_items <= 1 {
        return (0..n_items).map(make).collect();
    }
    let mut slots: Vec<Option<T>> = (0..n_items).map(|_| None).collect();
    let make_ref = &make;
    let chunk_len = n_items.div_ceil(workers);
    // Carry the caller's tracing scope into the workers, so spans recorded
    // inside `make` nest under the phase that spawned the fan-out. Inert
    // (one thread-local read, no allocation per worker) when tracing is
    // disabled.
    let obs_scope = autofeat_obs::ambient_scope();
    thread::scope(|s| {
        for (w, chunk) in slots.chunks_mut(chunk_len).enumerate() {
            let start = w * chunk_len;
            let obs_scope = obs_scope.clone();
            s.spawn(move |_| {
                let _obs = obs_scope.enter();
                for (off, slot) in chunk.iter_mut().enumerate() {
                    *slot = Some(make_ref(start + off));
                }
            });
        }
    })
    .expect("parallel worker panicked");
    slots
        .into_iter()
        .map(|s| s.expect("every slot filled"))
        .collect()
}

/// [`build_indexed_with`] at the default worker count ([`n_workers`]).
pub fn build_indexed<T, F>(n_items: usize, make: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    build_indexed_with(n_workers(), n_items, make)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_index_order() {
        let v = build_indexed(100, |i| i * 2);
        assert_eq!(v, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_item_sequential_path() {
        assert_eq!(build_indexed(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn zero_items() {
        let v: Vec<usize> = build_indexed(0, |i| i);
        assert!(v.is_empty());
    }

    #[test]
    fn matches_sequential_for_any_size_and_worker_count() {
        for workers in [1usize, 2, 3, 8, 64] {
            for n in [2usize, 3, 7, 8, 9, 33] {
                let par = build_indexed_with(workers, n, |i| i * i);
                let seq: Vec<usize> = (0..n).map(|i| i * i).collect();
                assert_eq!(par, seq, "workers = {workers}, n = {n}");
            }
        }
    }

    #[test]
    fn env_override_controls_worker_count() {
        // Other tests may race on reads of this variable, but they only use
        // it to pick a worker count — results are worker-count independent
        // by construction, so the race is benign.
        std::env::set_var("AUTOFEAT_THREADS", "3");
        assert_eq!(n_workers(), 3);
        std::env::set_var("AUTOFEAT_THREADS", "0"); // 0 = auto
        assert!(n_workers() >= 1);
        std::env::set_var("AUTOFEAT_THREADS", "not-a-number");
        assert!(n_workers() >= 1);
        std::env::remove_var("AUTOFEAT_THREADS");
        assert!(n_workers() >= 1);
    }
}
