//! Deterministic fan-out over scoped worker threads.
//!
//! Shared by the ML ensembles (tree fitting) and the discovery BFS
//! (per-level join evaluation). Work is split by item index and every item
//! must be a pure function of its index, so the output is bit-identical at
//! any worker count — parallelism changes wall-clock time, never results.
//!
//! Worker-count resolution honours the `AUTOFEAT_THREADS` environment
//! variable (`0`, unset, or unparsable = auto-detect via
//! `available_parallelism`), resolved **once per process** — the variable
//! is read and parsed on the first [`n_workers`] call and cached in a
//! `OnceLock`, so steady-state resolution is a single atomic load. Callers
//! with their own configuration knob (e.g. `AutoFeatConfig::threads`)
//! should resolve that knob first and pass an explicit count to
//! [`build_indexed_with`]: config-first, environment as the fallback.
//!
//! ## Resilience
//!
//! [`run_indexed_ctl`] is the fault-aware variant: each item is wrapped in
//! `catch_unwind` (a panicking item becomes a structured [`WorkerPanic`]
//! carrying the item index and the pipeline phase, not a process abort)
//! and the run's [`RunControl`] is polled before every item (interrupted
//! items come back as [`ItemOutcome::Skipped`]). [`build_indexed_with`]
//! keeps its infallible signature for callers without failure handling; a
//! worker panic there is resumed on the calling thread with the enriched
//! context attached.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

use crossbeam::thread;

use crate::control::{self, Interrupt, RunControl};

/// Everything a fan-out worker must re-install to behave as if it were the
/// spawning thread: the run control, the request's cache recorder, the
/// request's fault domain, and the tracing scope. Captured once on the
/// caller, entered per job — so a **shared** worker thread serving many
/// requests never leaks one request's ambient state into another's items.
struct AmbientBundle {
    ctl: Option<Arc<RunControl>>,
    recorder: Option<Arc<crate::cache::CacheRecorder>>,
    faults: Option<Arc<crate::faults::FaultDomain>>,
    obs: autofeat_obs::TraceScope,
}

impl AmbientBundle {
    /// Snapshot the calling thread's ambient state (`ctl` overrides the
    /// ambient control: the explicit parameter is the source of truth).
    fn capture(ctl: Option<&Arc<RunControl>>) -> AmbientBundle {
        AmbientBundle {
            ctl: ctl.cloned(),
            recorder: crate::cache::ambient_recorder(),
            faults: crate::faults::ambient_domain(),
            obs: autofeat_obs::ambient_scope(),
        }
    }

    /// Install the bundle on the current thread; everything is restored
    /// when the returned guards drop (also on panic).
    fn enter(
        &self,
    ) -> (
        autofeat_obs::ScopeGuard,
        control::AmbientGuard,
        crate::cache::RecorderGuard,
        crate::faults::DomainGuard,
    ) {
        (
            self.obs.enter(),
            control::install_ambient(self.ctl.clone()),
            crate::cache::install_recorder(self.recorder.clone()),
            crate::faults::install_ambient_domain(self.faults.clone()),
        )
    }
}

/// Parse an `AUTOFEAT_THREADS`-style value: a positive integer is an
/// explicit count; `0`, `None`, or unparsable input means auto-detect via
/// `available_parallelism`.
pub fn parse_worker_count(raw: Option<&str>) -> usize {
    match raw.and_then(|v| v.trim().parse::<usize>().ok()) {
        Some(n) if n > 0 => n,
        // 0 or absent/invalid = auto.
        _ => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
    }
}

/// Number of worker threads to use when the caller has no explicit
/// configuration: the `AUTOFEAT_THREADS` environment variable when set to a
/// positive integer, otherwise the machine's available parallelism.
/// Resolved once per process; later changes to the variable have no effect.
pub fn n_workers() -> usize {
    static RESOLVED: OnceLock<usize> = OnceLock::new();
    *RESOLVED
        .get_or_init(|| parse_worker_count(std::env::var("AUTOFEAT_THREADS").ok().as_deref()))
}

/// How one fan-out item ended.
#[derive(Debug)]
pub enum ItemOutcome<T> {
    /// The item's closure returned normally.
    Done(T),
    /// The item's closure panicked; the panic was caught and structured.
    Panicked(WorkerPanic),
    /// The item was never run: the [`RunControl`] was interrupted before
    /// its turn.
    Skipped(Interrupt),
}

impl<T> ItemOutcome<T> {
    /// The value, if the item completed.
    pub fn done(self) -> Option<T> {
        match self {
            ItemOutcome::Done(v) => Some(v),
            _ => None,
        }
    }
}

/// A caught worker panic, with enough context to act on: which item, in
/// which pipeline phase, saying what.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerPanic {
    /// Index of the item whose closure panicked.
    pub item: usize,
    /// Dotted span path of the phase that spawned the fan-out (`""` when
    /// tracing is disabled).
    pub phase: String,
    /// The panic payload, stringified (`&str` and `String` payloads pass
    /// through; anything else becomes a placeholder).
    pub message: String,
}

impl WorkerPanic {
    fn render(&self) -> String {
        if self.phase.is_empty() {
            format!("worker panic on item {}: {}", self.item, self.message)
        } else {
            format!(
                "worker panic on item {} in phase `{}`: {}",
                self.item, self.phase, self.message
            )
        }
    }
}

impl std::fmt::Display for WorkerPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

pub(crate) fn payload_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run `make(i)` for `i in 0..n_items` across `workers` scoped threads,
/// preserving index order, isolating panics, and honouring `ctl`.
///
/// * Before each item the control (when given) is polled; once it reports
///   an interrupt, that worker's remaining items are [`ItemOutcome::
///   Skipped`] — already-finished items are unaffected, so the caller gets
///   a partial-but-valid prefix per chunk.
/// * Each item runs under `catch_unwind`: a panic is caught and returned
///   as [`ItemOutcome::Panicked`] with the item index and current phase
///   span path attached. One poisoned item never takes down its siblings
///   or the process.
/// * `ctl` is installed as the ambient control in every worker, so joins
///   and index builds inside `make` can poll it too.
///
/// `make` must be pure given `i` for the `Done` outcomes to be
/// bit-identical at any worker count (panics and skips are, by nature,
/// only deterministic when their cause is).
pub fn run_indexed_ctl<T, F>(
    workers: usize,
    n_items: usize,
    ctl: Option<&Arc<RunControl>>,
    make: F,
) -> Vec<ItemOutcome<T>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers.max(1).min(n_items.max(1));
    let make_ref = &make;
    let phase = autofeat_obs::current_span_path();
    let run_item = |i: usize| -> ItemOutcome<T> {
        if let Some(reason) = ctl.and_then(|c| c.interrupted()) {
            return ItemOutcome::Skipped(reason);
        }
        match catch_unwind(AssertUnwindSafe(|| make_ref(i))) {
            Ok(v) => ItemOutcome::Done(v),
            Err(payload) => ItemOutcome::Panicked(WorkerPanic {
                item: i,
                phase: phase.clone(),
                message: payload_message(payload),
            }),
        }
    };
    // `in_pool_worker`: a nested fan-out from inside a pool job runs
    // inline — submitting to the pool from a pool thread could deadlock
    // (every thread waiting on jobs only they could run).
    if workers <= 1 || n_items <= 1 || in_pool_worker() {
        let _ctl_guard = control::install_ambient(ctl.cloned());
        return (0..n_items).map(run_item).collect();
    }
    let mut slots: Vec<Option<ItemOutcome<T>>> = (0..n_items).map(|_| None).collect();
    let run_ref = &run_item;
    let chunk_len = n_items.div_ceil(workers);
    // Carry the caller's ambient state into the workers: the tracing scope
    // (so spans recorded inside `make` nest under the phase that spawned
    // the fan-out), the run control, and the request's cache recorder and
    // fault domain. All inert (a thread-local read each, no allocation per
    // worker) when the respective facility is unused.
    let bundle = AmbientBundle::capture(ctl);
    if let Some(pool) = shared_pool() {
        // Reusable pool path: no OS thread spawned per fan-out. Chunks are
        // handed to jobs through take-once cells; the scatter call blocks
        // until every job has run, so the borrows stay alive throughout.
        type TakeOnceChunk<'a, T> = Mutex<Option<&'a mut [Option<ItemOutcome<T>>]>>;
        let chunks: Vec<TakeOnceChunk<'_, T>> =
            slots.chunks_mut(chunk_len).map(|c| Mutex::new(Some(c))).collect();
        let task = |w: usize| {
            let Some(chunk) = chunks[w].lock().ok().and_then(|mut c| c.take()) else {
                return;
            };
            let _guards = bundle.enter();
            let start = w * chunk_len;
            for (off, slot) in chunk.iter_mut().enumerate() {
                *slot = Some(run_ref(start + off));
            }
        };
        pool.scatter(chunks.len(), &task);
    } else {
        let scope_result = thread::scope(|s| {
            for (w, chunk) in slots.chunks_mut(chunk_len).enumerate() {
                let start = w * chunk_len;
                let bundle = &bundle;
                s.spawn(move |_| {
                    let _guards = bundle.enter();
                    for (off, slot) in chunk.iter_mut().enumerate() {
                        *slot = Some(run_ref(start + off));
                    }
                });
            }
        });
        // Worker closures cannot unwind (every panic is caught per item),
        // so a scope error would mean a panic in the harness itself.
        scope_result.expect("fan-out scope failed outside item closures");
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(i, s)| {
            // An unfilled slot means the fan-out harness itself panicked
            // around the item (the item closure is unwind-caught); surface
            // it as a structured outcome instead of aborting the request.
            s.unwrap_or_else(|| {
                ItemOutcome::Panicked(WorkerPanic {
                    item: i,
                    phase: phase.clone(),
                    message: "fan-out harness panicked before the item ran".to_string(),
                })
            })
        })
        .collect()
}

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of long-lived worker threads fed from one shared
/// queue.
///
/// Built for the serving path: every discovery request fans its per-level
/// evaluation out through [`run_indexed_ctl`], and under a resident
/// [`DiscoveryService`] that used to mean spawning (and joining) fresh OS
/// threads per level per request. The pool amortizes thread creation
/// across the process lifetime; requests interleave at chunk granularity.
///
/// Jobs re-install their spawner's ambient state (control, recorder, fault
/// domain, trace scope) themselves — the pool schedules closures and
/// nothing else, so a thread serving request A immediately after request B
/// carries zero residue between them.
pub struct WorkerPool {
    inner: Arc<PoolShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool").field("size", &self.handles.len()).finish()
    }
}

struct PoolShared {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    shutdown: AtomicBool,
    /// Workers currently executing a job (not parked, not popping) — the
    /// instantaneous utilization numerator exported by the service metrics.
    busy: AtomicUsize,
}

thread_local! {
    static IN_POOL_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Is the current thread one of a [`WorkerPool`]'s workers?
fn in_pool_worker() -> bool {
    IN_POOL_WORKER.with(|f| f.get())
}

impl WorkerPool {
    /// Spawn a pool of `size` worker threads (at least one).
    pub fn new(size: usize) -> WorkerPool {
        let inner = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            busy: AtomicUsize::new(0),
        });
        let handles = (0..size.max(1))
            .map(|i| {
                let shared = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("autofeat-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool { inner, handles }
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.handles.len()
    }

    /// Jobs queued but not yet picked up by a worker. Point-in-time; only
    /// meaningful as a pressure gauge (a scrape-rate signal, not a count
    /// to act on per-value).
    pub fn queue_depth(&self) -> usize {
        self.inner.queue.lock().map(|q| q.len()).unwrap_or(0)
    }

    /// Workers currently executing a job. Point-in-time;
    /// `busy_workers() / size()` is the pool's instantaneous utilization.
    pub fn busy_workers(&self) -> usize {
        self.inner.busy.load(Ordering::Relaxed)
    }

    fn submit(&self, job: Job) {
        let Ok(mut q) = self.inner.queue.lock() else { return };
        q.push_back(job);
        drop(q);
        self.inner.available.notify_one();
    }

    /// Run `task(w)` for every `w in 0..n_tasks` on the pool, blocking the
    /// caller until all of them have finished. Tasks may run in any order
    /// and interleave with other callers' tasks; a panicking task is
    /// caught (the worker thread survives) and simply counts as finished.
    ///
    /// `task` is borrowed, not `'static`: the completion latch below keeps
    /// the caller parked until the last job has dropped its reference, so
    /// the erased lifetime can never be observed dangling.
    pub fn scatter(&self, n_tasks: usize, task: &(dyn Fn(usize) + Sync)) {
        if n_tasks == 0 {
            return;
        }
        struct Latch {
            remaining: Mutex<usize>,
            done: Condvar,
        }
        // Lifetime erasure for the non-'static task reference; see the
        // latch argument above. The pointer is only ever dereferenced
        // before the job decrements the latch.
        struct TaskPtr(*const (dyn Fn(usize) + Sync));
        unsafe impl Send for TaskPtr {}
        impl TaskPtr {
            /// SAFETY: caller must guarantee the pointee is still alive.
            unsafe fn call(&self, w: usize) {
                (*self.0)(w)
            }
        }
        let latch = Arc::new(Latch { remaining: Mutex::new(n_tasks), done: Condvar::new() });
        // SAFETY: lifetime erasure only — the latch wait below keeps `task`
        // borrowed (and the caller parked) until the last job finishes.
        let erased: *const (dyn Fn(usize) + Sync + 'static) = unsafe {
            std::mem::transmute::<
                *const (dyn Fn(usize) + Sync + '_),
                *const (dyn Fn(usize) + Sync + 'static),
            >(task)
        };
        for w in 0..n_tasks {
            let latch = Arc::clone(&latch);
            let ptr = TaskPtr(erased);
            self.submit(Box::new(move || {
                // SAFETY: the scatter caller blocks on the latch until this
                // job (and every sibling) has decremented it, which happens
                // strictly after this dereference — the borrow is alive.
                let _ = catch_unwind(AssertUnwindSafe(|| unsafe { ptr.call(w) }));
                let mut rem = latch.remaining.lock().unwrap_or_else(|e| e.into_inner());
                *rem -= 1;
                if *rem == 0 {
                    latch.done.notify_all();
                }
            }));
        }
        let mut rem = latch.remaining.lock().unwrap_or_else(|e| e.into_inner());
        while *rem > 0 {
            rem = latch.done.wait(rem).unwrap_or_else(|e| e.into_inner());
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.available.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    IN_POOL_WORKER.with(|f| f.set(true));
    loop {
        let job = {
            let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(job) = q.pop_front() {
                    break job;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                q = shared.available.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        shared.busy.fetch_add(1, Ordering::Relaxed);
        job();
        shared.busy.fetch_sub(1, Ordering::Relaxed);
    }
}

/// The process-wide shared pool used by [`run_indexed_ctl`], sized to
/// [`n_workers`]. `None` when a single worker is configured (fan-outs run
/// inline) or when the pool is disabled via `AUTOFEAT_POOL=0` (fan-outs
/// fall back to per-call scoped threads). Created lazily on first use and
/// lives for the rest of the process.
pub fn shared_pool() -> Option<&'static WorkerPool> {
    static POOL: OnceLock<Option<WorkerPool>> = OnceLock::new();
    POOL.get_or_init(|| {
        let enabled = match std::env::var("AUTOFEAT_POOL") {
            Ok(v) => !matches!(v.trim(), "0" | "off" | "false"),
            Err(_) => true,
        };
        let size = n_workers();
        (enabled && size > 1).then(|| WorkerPool::new(size))
    })
    .as_ref()
}

/// Build `n_items` values with `make(i)` across `workers` scoped threads,
/// preserving index order. `make` must be pure given `i` (all randomness
/// derived from `i`), so the result is identical for every `workers` value.
///
/// A panicking item does not abort the process from a worker thread:
/// the panic is caught, enriched with the item index and phase span path,
/// and resumed on the calling thread.
pub fn build_indexed_with<T, F>(workers: usize, n_items: usize, make: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let mut out = Vec::with_capacity(n_items);
    for outcome in run_indexed_ctl(workers, n_items, None, make) {
        match outcome {
            ItemOutcome::Done(v) => out.push(v),
            ItemOutcome::Panicked(p) => std::panic::resume_unwind(Box::new(p.render())),
            ItemOutcome::Skipped(_) => unreachable!("no control given, nothing can skip"),
        }
    }
    out
}

/// [`build_indexed_with`] at the default worker count ([`n_workers`]).
pub fn build_indexed<T, F>(n_items: usize, make: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    build_indexed_with(n_workers(), n_items, make)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_index_order() {
        let v = build_indexed(100, |i| i * 2);
        assert_eq!(v, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_item_sequential_path() {
        assert_eq!(build_indexed(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn zero_items() {
        let v: Vec<usize> = build_indexed(0, |i| i);
        assert!(v.is_empty());
    }

    #[test]
    fn matches_sequential_for_any_size_and_worker_count() {
        for workers in [1usize, 2, 3, 8, 64] {
            for n in [2usize, 3, 7, 8, 9, 33] {
                let par = build_indexed_with(workers, n, |i| i * i);
                let seq: Vec<usize> = (0..n).map(|i| i * i).collect();
                assert_eq!(par, seq, "workers = {workers}, n = {n}");
            }
        }
    }

    #[test]
    fn worker_count_parsing_is_config_shaped() {
        // `n_workers()` itself resolves once per process (other tests may
        // have fixed its value already), so the contract is asserted on the
        // parser it delegates to.
        assert_eq!(parse_worker_count(Some("3")), 3);
        assert_eq!(parse_worker_count(Some(" 12 ")), 12);
        let auto = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        assert_eq!(parse_worker_count(Some("0")), auto, "0 = auto");
        assert_eq!(parse_worker_count(Some("not-a-number")), auto);
        assert_eq!(parse_worker_count(None), auto);
        assert!(n_workers() >= 1);
        assert_eq!(n_workers(), n_workers(), "resolution is stable");
    }

    #[test]
    fn panicking_item_is_isolated_and_structured() {
        for workers in [1usize, 4] {
            let outcomes = run_indexed_ctl(workers, 8, None, |i| {
                if i == 5 {
                    panic!("injected fault: item five");
                }
                i * 10
            });
            assert_eq!(outcomes.len(), 8);
            for (i, o) in outcomes.iter().enumerate() {
                match o {
                    ItemOutcome::Done(v) => assert_eq!(*v, i * 10),
                    ItemOutcome::Panicked(p) => {
                        assert_eq!(i, 5, "only item 5 panics (workers = {workers})");
                        assert_eq!(p.item, 5);
                        assert!(p.message.contains("item five"), "{p:?}");
                    }
                    ItemOutcome::Skipped(_) => panic!("nothing should skip"),
                }
            }
        }
    }

    #[test]
    fn panic_context_includes_phase_span_path() {
        let tracer = autofeat_obs::Tracer::enabled();
        let outcomes = autofeat_obs::with_tracer(&tracer, || {
            let _s = autofeat_obs::span("level");
            run_indexed_ctl(2, 4, None, |i| {
                if i == 2 {
                    panic!("boom");
                }
                i
            })
        });
        let p = outcomes
            .iter()
            .find_map(|o| match o {
                ItemOutcome::Panicked(p) => Some(p),
                _ => None,
            })
            .expect("item 2 panicked");
        assert_eq!(p.phase, "level");
        assert!(p.to_string().contains("item 2 in phase `level`"), "{p}");
    }

    #[test]
    fn build_indexed_resumes_panic_with_context() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            build_indexed_with(2, 6, |i| {
                if i == 3 {
                    panic!("kaboom");
                }
                i
            })
        }));
        let payload = caught.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("worker panic on item 3"), "{msg}");
        assert!(msg.contains("kaboom"), "{msg}");
    }

    #[test]
    fn cancelled_control_skips_remaining_items() {
        let ctl = Arc::new(RunControl::new());
        ctl.cancel();
        let outcomes = run_indexed_ctl(4, 10, Some(&ctl), |i| i);
        assert!(
            outcomes.iter().all(|o| matches!(o, ItemOutcome::Skipped(Interrupt::Cancelled))),
            "pre-cancelled control skips every item"
        );
    }

    #[test]
    fn expired_deadline_skips_items() {
        let ctl = Arc::new(RunControl::new());
        ctl.arm_budget(std::time::Duration::ZERO);
        let outcomes = run_indexed_ctl(2, 6, Some(&ctl), |i| i);
        assert!(outcomes
            .iter()
            .all(|o| matches!(o, ItemOutcome::Skipped(Interrupt::DeadlineExceeded))));
    }

    #[test]
    fn workers_see_ambient_control() {
        let ctl = Arc::new(RunControl::new());
        let outcomes = run_indexed_ctl(3, 6, Some(&ctl), |_| control::ambient().is_some());
        assert!(outcomes.into_iter().all(|o| o.done() == Some(true)));
        assert!(control::ambient().is_none(), "caller thread restored");
    }

    #[test]
    fn workers_inherit_ambient_bundle() {
        let rec = crate::cache::CacheRecorder::new();
        let dom = crate::faults::FaultDomain::new();
        let _rg = crate::cache::install_recorder(Some(Arc::clone(&rec)));
        let _dg = crate::faults::install_ambient_domain(Some(Arc::clone(&dom)));
        let outcomes = run_indexed_ctl(4, 8, None, |_| {
            (
                crate::cache::ambient_recorder().is_some(),
                crate::faults::ambient_domain().map(|d| d.id()),
            )
        });
        for o in outcomes {
            let (has_recorder, domain) = o.done().expect("no faults injected");
            assert!(has_recorder, "worker sees the spawner's cache recorder");
            assert_eq!(domain, Some(dom.id()), "worker sees the spawner's fault domain");
        }
    }

    #[test]
    fn pool_scatter_runs_every_task_exactly_once() {
        use std::sync::atomic::AtomicUsize;
        let pool = WorkerPool::new(3);
        assert_eq!(pool.size(), 3);
        let hits: Vec<AtomicUsize> = (0..17).map(|_| AtomicUsize::new(0)).collect();
        let task = |w: usize| {
            hits[w].fetch_add(1, Ordering::SeqCst);
        };
        pool.scatter(hits.len(), &task);
        for (w, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::SeqCst), 1, "task {w} ran exactly once");
        }
        pool.scatter(0, &task); // zero tasks: returns immediately
    }

    #[test]
    fn pool_survives_panicking_tasks() {
        use std::sync::atomic::AtomicUsize;
        let pool = WorkerPool::new(2);
        let panicking = |w: usize| {
            if w.is_multiple_of(2) {
                panic!("injected task fault");
            }
        };
        pool.scatter(6, &panicking);
        let ran = AtomicUsize::new(0);
        let counting = |_w: usize| {
            ran.fetch_add(1, Ordering::SeqCst);
        };
        pool.scatter(5, &counting);
        assert_eq!(ran.load(Ordering::SeqCst), 5, "workers survive caught task panics");
    }

    #[test]
    fn pool_interleaves_concurrent_scatters() {
        use std::sync::atomic::AtomicUsize;
        let pool = WorkerPool::new(4);
        let total = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let task = |_w: usize| {
                        total.fetch_add(1, Ordering::SeqCst);
                    };
                    pool.scatter(25, &task);
                });
            }
        });
        assert_eq!(total.load(Ordering::SeqCst), 100, "4 concurrent clients × 25 tasks");
    }

    #[test]
    fn pool_gauges_track_busy_and_return_to_idle() {
        use std::sync::atomic::AtomicBool;
        let pool = WorkerPool::new(2);
        assert_eq!(pool.queue_depth(), 0);
        assert_eq!(pool.busy_workers(), 0);
        let release = AtomicBool::new(false);
        std::thread::scope(|s| {
            s.spawn(|| {
                let task = |_w: usize| {
                    while !release.load(Ordering::SeqCst) {
                        std::thread::sleep(std::time::Duration::from_micros(50));
                    }
                };
                pool.scatter(1, &task);
            });
            // The job is running (parked on `release`), so the busy gauge
            // must observe it.
            let mut seen_busy = false;
            for _ in 0..1000 {
                if pool.busy_workers() > 0 {
                    seen_busy = true;
                    break;
                }
                std::thread::sleep(std::time::Duration::from_micros(100));
            }
            release.store(true, Ordering::SeqCst);
            assert!(seen_busy, "busy gauge observes an in-flight job");
        });
        // The busy decrement races scatter's return by a few instructions.
        for _ in 0..1000 {
            if pool.busy_workers() == 0 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_micros(100));
        }
        assert_eq!(pool.busy_workers(), 0, "gauge returns to idle");
        assert_eq!(pool.queue_depth(), 0);
    }

    #[test]
    fn nested_fan_out_runs_inline_without_deadlock() {
        // A fan-out item that itself fans out must not submit to the pool
        // (it runs inline instead) — with a pool of N threads all busy on
        // outer items, nested submissions could otherwise deadlock.
        let outcomes = run_indexed_ctl(4, 6, None, |i| {
            let inner = run_indexed_ctl(4, 3, None, move |j| i * 10 + j);
            inner.into_iter().map(|o| o.done().expect("inner item done")).collect::<Vec<_>>()
        });
        for (i, o) in outcomes.into_iter().enumerate() {
            let inner = o.done().expect("outer item done");
            assert_eq!(inner, vec![i * 10, i * 10 + 1, i * 10 + 2]);
        }
    }
}
