//! # autofeat-data
//!
//! A small, dependency-light columnar table engine — the storage substrate of
//! the AutoFeat reproduction (ICDE 2024, "AutoFeat: Transitive Feature
//! Discovery over Join Paths").
//!
//! The paper manipulates pandas DataFrames; this crate provides the
//! equivalent operations needed by the feature-discovery pipeline:
//!
//! * typed, null-aware columns ([`Column`]) and tables ([`Table`]);
//! * CSV ingestion with type inference ([`csv`]);
//! * dictionary-encoded join-key domains built at ingest ([`keydict`]):
//!   per-column dense `u32` codes with permutation-stable assignment, so
//!   index builds and encodes run over code arithmetic instead of per-row
//!   key hashing;
//! * **left joins with join-cardinality normalization** (§IV-B of the paper:
//!   group by the join column and pick a random representative row so the
//!   base-table row count and label distribution are preserved) — [`join`];
//! * missing-value imputation with the most frequent value ([`impute`]);
//! * stratified sampling and train/test splitting ([`sample`]);
//! * label encoding / numeric-matrix extraction for the ML substrate
//!   ([`encode`]);
//! * data-quality statistics such as the null-value ratio used by the τ
//!   pruning rule ([`stats`]);
//! * a process-stable hasher for determinism-critical derivations
//!   ([`stable_hash`]) and deterministic scoped-thread fan-out
//!   ([`parallel`]);
//! * cooperative run-lifecycle control — shared cancel flag + deadline,
//!   polled per item/row block ([`control`]) — and a process-level runtime
//!   fault registry for resilience tests ([`faults`]).
//!
//! Randomized operations either take an explicit [`rand::rngs::StdRng`]
//! (sampling, splitting) or an explicit `u64` seed (join normalization,
//! whose representative picks are a pure function of `(seed, key, row
//! content)` — see [`join`]) so that experiments are reproducible
//! bit-for-bit, across processes and thread counts.

// Fail-soft discipline: non-test code must propagate errors, not unwrap.
// CI runs clippy with `-D warnings`, so this is effectively a deny there.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod cache;
pub mod column;
pub mod control;
pub mod csv;
pub mod encode;
pub mod error;
pub mod faults;
pub mod impute;
pub mod join;
pub mod keydict;
pub mod ops;
pub mod parallel;
pub mod sample;
pub mod schema;
pub mod stable_hash;
pub mod stats;
pub mod table;
pub mod value;

pub use cache::{
    env_cache_budget, parse_budget_bytes, CacheRecorder, CacheStats, LakeIndexCache,
    CACHE_BUDGET_ENV,
};
pub use column::Column;
pub use control::{Interrupt, RunControl};
pub use error::{DataError, Result};
pub use faults::FaultDomain;
pub use keydict::{KeyDict, NULL_CODE};
pub use parallel::WorkerPool;
pub use schema::{Field, Schema};
pub use table::Table;
pub use value::{DType, Key, Value};
