//! Scalar values, data types, and hashable join keys.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// The logical data type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DType {
    /// 64-bit signed integers.
    Int,
    /// 64-bit floats.
    Float,
    /// UTF-8 strings.
    Str,
    /// Booleans.
    Bool,
}

impl DType {
    /// Human-readable name of the type.
    pub fn name(self) -> &'static str {
        match self {
            DType::Int => "int",
            DType::Float => "float",
            DType::Str => "str",
            DType::Bool => "bool",
        }
    }

    /// Whether the type is numeric (int or float).
    pub fn is_numeric(self) -> bool {
        matches!(self, DType::Int | DType::Float)
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A single (possibly null) cell value.
///
/// Strings use `Arc<str>` so that cloning values during joins is cheap.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL-style NULL / missing value.
    Null,
    /// Integer value.
    Int(i64),
    /// Float value. `NaN` is treated as null when stored into a column.
    Float(f64),
    /// String value.
    Str(Arc<str>),
    /// Boolean value.
    Bool(bool),
}

impl Value {
    /// Construct a string value from anything string-like.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Whether the value is null (including a float `NaN`).
    pub fn is_null(&self) -> bool {
        match self {
            Value::Null => true,
            Value::Float(f) => f.is_nan(),
            _ => false,
        }
    }

    /// The data type of the value, if non-null.
    pub fn dtype(&self) -> Option<DType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DType::Int),
            Value::Float(_) => Some(DType::Float),
            Value::Str(_) => Some(DType::Str),
            Value::Bool(_) => Some(DType::Bool),
        }
    }

    /// Numeric view: ints, floats and bools coerce to `f64`; strings and
    /// nulls yield `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) if !f.is_nan() => Some(*f),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// The equi-join key for this value, or `None` when null (nulls never
    /// match in joins).
    pub fn key(&self) -> Option<Key> {
        match self {
            Value::Null => None,
            Value::Int(i) => Some(Key::Num(*i)),
            Value::Float(f) => {
                if f.is_nan() {
                    None
                } else if f.fract() == 0.0 && *f >= i64::MIN as f64 && *f <= i64::MAX as f64 {
                    // Integral floats join with ints: 5.0 == 5.
                    Some(Key::Num(*f as i64))
                } else {
                    // Normalize -0.0 to 0.0 so the bit patterns agree.
                    let f = if *f == 0.0 { 0.0 } else { *f };
                    Some(Key::FloatBits(f.to_bits()))
                }
            }
            Value::Str(s) => Some(Key::Str(Arc::clone(s))),
            Value::Bool(b) => Some(Key::Bool(*b)),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str(""),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => f.write_str(s),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::str(v)
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map_or(Value::Null, Into::into)
    }
}

/// A hashable, equality-comparable join key.
///
/// Integral values (ints and integral floats) share the [`Key::Num`] variant
/// so that `5` joins with `5.0`, which is common when CSV type inference
/// disagrees between two files describing the same entity.
///
/// The derived total order (variant tag, then payload) carries no semantic
/// meaning; it exists so dictionary encoding can break stable-hash ties
/// deterministically when assigning permutation-stable codes.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Key {
    /// Integral numeric key.
    Num(i64),
    /// Non-integral float key, by normalized bit pattern.
    FloatBits(u64),
    /// String key.
    Str(Arc<str>),
    /// Boolean key.
    Bool(bool),
}

impl Hash for Key {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Key::Num(i) => {
                0u8.hash(state);
                i.hash(state);
            }
            Key::FloatBits(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            Key::Str(s) => {
                2u8.hash(state);
                s.hash(state);
            }
            Key::Bool(b) => {
                3u8.hash(state);
                b.hash(state);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn null_detection() {
        assert!(Value::Null.is_null());
        assert!(Value::Float(f64::NAN).is_null());
        assert!(!Value::Int(0).is_null());
        assert!(!Value::str("").is_null());
    }

    #[test]
    fn as_f64_coercions() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Bool(true).as_f64(), Some(1.0));
        assert_eq!(Value::str("x").as_f64(), None);
        assert_eq!(Value::Null.as_f64(), None);
    }

    #[test]
    fn int_and_integral_float_share_key() {
        assert_eq!(Value::Int(5).key(), Value::Float(5.0).key());
        assert_ne!(Value::Int(5).key(), Value::Float(5.5).key());
    }

    #[test]
    fn negative_zero_key_normalized() {
        assert_eq!(Value::Float(-0.0).key(), Value::Float(0.0).key());
    }

    #[test]
    fn nan_has_no_key() {
        assert_eq!(Value::Float(f64::NAN).key(), None);
        assert_eq!(Value::Null.key(), None);
    }

    #[test]
    fn keys_hash_distinctly_across_variants() {
        let mut set = HashSet::new();
        set.insert(Value::Int(1).key().unwrap());
        set.insert(Value::str("1").key().unwrap());
        set.insert(Value::Bool(true).key().unwrap());
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn display_roundtrip_ints() {
        assert_eq!(Value::Int(-7).to_string(), "-7");
        assert_eq!(Value::Null.to_string(), "");
    }

    #[test]
    fn from_option() {
        assert_eq!(Value::from(Some(3i64)), Value::Int(3));
        assert_eq!(Value::from(Option::<i64>::None), Value::Null);
    }

    #[test]
    fn dtype_reporting() {
        assert_eq!(Value::Int(1).dtype(), Some(DType::Int));
        assert_eq!(Value::Null.dtype(), None);
        assert!(DType::Int.is_numeric());
        assert!(DType::Float.is_numeric());
        assert!(!DType::Str.is_numeric());
    }
}
