//! Left joins with join-cardinality normalization (§IV-B of the paper).
//!
//! AutoFeat only ever performs **left joins** so that the base table keeps
//! its exact row count and label distribution. To prevent row duplication on
//! 1:n and m:n joins, the right-hand table is first *normalized*: rows are
//! grouped by the join column and one **random representative row** is kept
//! per key (the strategy ARDA uses, which the AutoFeat paper adopts).

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::RngExt;

use crate::column::Column;
use crate::error::Result;
use crate::table::Table;
use crate::value::Key;

/// Output of a left join: the joined table plus match statistics used by
/// the data-quality pruning rule.
#[derive(Debug, Clone)]
pub struct JoinOutput {
    /// The joined table. Left columns keep their names; right columns are
    /// prefixed with `{prefix}.` and deduplicated with `#k` suffixes when
    /// needed.
    pub table: Table,
    /// Number of left rows that found a match.
    pub matched: usize,
    /// Names of the columns contributed by the right table (post renaming).
    pub right_columns: Vec<String>,
}

impl JoinOutput {
    /// Fraction of left rows that found a match, in `[0, 1]`.
    pub fn match_ratio(&self) -> f64 {
        if self.table.n_rows() == 0 {
            0.0
        } else {
            self.matched as f64 / self.table.n_rows() as f64
        }
    }
}

/// Build the key → representative-row map for the right table.
///
/// Groups rows by join key; for keys with multiple rows one representative is
/// chosen uniformly at random (deterministic given the RNG), implementing the
/// paper's join-cardinality normalization.
fn representative_rows(right_key: &Column, rng: &mut StdRng) -> HashMap<Key, usize> {
    let mut groups: HashMap<Key, Vec<usize>> = HashMap::new();
    for row in 0..right_key.len() {
        if let Some(k) = right_key.key(row) {
            groups.entry(k).or_default().push(row);
        }
    }
    groups
        .into_iter()
        .map(|(k, rows)| {
            let pick = if rows.len() == 1 { rows[0] } else { rows[rng.random_range(0..rows.len())] };
            (k, pick)
        })
        .collect()
}

/// Choose a fresh name for a right-hand column in the join result.
fn disambiguate(base: &str, taken: &dyn Fn(&str) -> bool) -> String {
    if !taken(base) {
        return base.to_string();
    }
    let mut k = 2usize;
    loop {
        let cand = format!("{base}#{k}");
        if !taken(&cand) {
            return cand;
        }
        k += 1;
    }
}

/// Left join `left` with `right` on `left.left_key = right.right_key`,
/// normalizing join cardinality so the result has exactly `left.n_rows()`
/// rows.
///
/// Right-hand columns are renamed to `{prefix}.{col}` (idempotently — a
/// column already carrying the prefix keeps it) and deduplicated against the
/// left schema. Null keys on either side never match, so a join between
/// unrelated columns yields an all-null right-hand side, which the τ pruning
/// rule then discards.
pub fn left_join_normalized(
    left: &Table,
    right: &Table,
    left_key: &str,
    right_key: &str,
    prefix: &str,
    rng: &mut StdRng,
) -> Result<JoinOutput> {
    let lk = left.column(left_key)?;
    let rk = right.column(right_key)?;
    let reps = representative_rows(rk, rng);

    let n = left.n_rows();
    let mut indices: Vec<Option<usize>> = Vec::with_capacity(n);
    let mut matched = 0usize;
    for row in 0..n {
        let ix = lk.key(row).and_then(|k| reps.get(&k).copied());
        if ix.is_some() {
            matched += 1;
        }
        indices.push(ix);
    }

    // Assemble: all left columns, then all right columns (renamed).
    let mut cols: Vec<(String, Column)> = Vec::with_capacity(left.n_cols() + right.n_cols());
    for i in 0..left.n_cols() {
        cols.push((left.field_at(i).name.clone(), left.column_at(i).clone()));
    }
    let mut right_columns = Vec::with_capacity(right.n_cols());
    for i in 0..right.n_cols() {
        let rname = &right.field_at(i).name;
        let base = if rname.starts_with(&format!("{prefix}.")) {
            rname.clone()
        } else {
            format!("{prefix}.{rname}")
        };
        let taken = |cand: &str| cols.iter().any(|(n, _)| n == cand);
        let name = disambiguate(&base, &taken);
        right_columns.push(name.clone());
        cols.push((name, right.column_at(i).take_opt(&indices)));
    }

    let table = Table::new(left.name().to_string(), cols)?;
    Ok(JoinOutput { table, matched, right_columns })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    fn left() -> Table {
        Table::new(
            "base",
            vec![
                ("id", Column::from_ints([Some(1), Some(2), Some(3), None])),
                ("label", Column::from_bools([Some(true), Some(false), Some(true), Some(false)])),
            ],
        )
        .unwrap()
    }

    fn right() -> Table {
        Table::new(
            "ext",
            vec![
                ("key", Column::from_ints([Some(1), Some(1), Some(3), Some(9)])),
                ("feat", Column::from_floats([Some(10.0), Some(20.0), Some(30.0), Some(99.0)])),
            ],
        )
        .unwrap()
    }

    #[test]
    fn preserves_left_row_count() {
        let out = left_join_normalized(&left(), &right(), "id", "key", "ext", &mut rng()).unwrap();
        assert_eq!(out.table.n_rows(), 4);
    }

    #[test]
    fn unmatched_and_null_keys_get_nulls() {
        let out = left_join_normalized(&left(), &right(), "id", "key", "ext", &mut rng()).unwrap();
        // id=2 has no match; id=None never matches.
        assert_eq!(out.table.value("ext.feat", 1).unwrap(), Value::Null);
        assert_eq!(out.table.value("ext.feat", 3).unwrap(), Value::Null);
        assert_eq!(out.matched, 2);
        assert!((out.match_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn duplicate_keys_are_normalized_to_one_representative() {
        let out = left_join_normalized(&left(), &right(), "id", "key", "ext", &mut rng()).unwrap();
        // id=1 matches exactly one of the two candidate rows (10.0 or 20.0),
        // never duplicating the left row.
        let v = out.table.value("ext.feat", 0).unwrap();
        assert!(v == Value::Float(10.0) || v == Value::Float(20.0));
        assert_eq!(out.table.n_rows(), 4);
    }

    #[test]
    fn representative_choice_is_deterministic_per_seed() {
        let a = left_join_normalized(&left(), &right(), "id", "key", "ext", &mut rng()).unwrap();
        let b = left_join_normalized(&left(), &right(), "id", "key", "ext", &mut rng()).unwrap();
        assert_eq!(a.table, b.table);
    }

    #[test]
    fn right_columns_are_prefixed() {
        let out = left_join_normalized(&left(), &right(), "id", "key", "ext", &mut rng()).unwrap();
        assert_eq!(out.right_columns, vec!["ext.key".to_string(), "ext.feat".to_string()]);
        assert!(out.table.has_column("ext.key"));
        assert!(out.table.has_column("label"));
    }

    #[test]
    fn self_join_disambiguates_names() {
        let l = left();
        let out1 = left_join_normalized(&l, &right(), "id", "key", "ext", &mut rng()).unwrap();
        let out2 =
            left_join_normalized(&out1.table, &right(), "id", "key", "ext", &mut rng()).unwrap();
        assert!(out2.table.has_column("ext.feat"));
        assert!(out2.table.has_column("ext.feat#2"));
    }

    #[test]
    fn mismatched_types_yield_all_null_right_side() {
        let r = Table::new(
            "ext",
            vec![
                ("key", Column::from_strs([Some("a"), Some("b")])),
                ("feat", Column::from_ints([Some(1), Some(2)])),
            ],
        )
        .unwrap();
        let out = left_join_normalized(&left(), &r, "id", "key", "ext", &mut rng()).unwrap();
        assert_eq!(out.matched, 0);
        assert_eq!(out.table.column("ext.feat").unwrap().null_count(), 4);
    }

    #[test]
    fn int_joins_integral_float_keys() {
        let r = Table::new(
            "ext",
            vec![
                ("key", Column::from_floats([Some(1.0), Some(2.0)])),
                ("feat", Column::from_ints([Some(100), Some(200)])),
            ],
        )
        .unwrap();
        let out = left_join_normalized(&left(), &r, "id", "key", "ext", &mut rng()).unwrap();
        assert_eq!(out.table.value("ext.feat", 0).unwrap(), Value::Int(100));
        assert_eq!(out.table.value("ext.feat", 1).unwrap(), Value::Int(200));
    }

    #[test]
    fn missing_key_column_errors() {
        assert!(left_join_normalized(&left(), &right(), "nope", "key", "p", &mut rng()).is_err());
        assert!(left_join_normalized(&left(), &right(), "id", "nope", "p", &mut rng()).is_err());
    }
}
