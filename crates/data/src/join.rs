//! Left joins with join-cardinality normalization (§IV-B of the paper).
//!
//! AutoFeat only ever performs **left joins** so that the base table keeps
//! its exact row count and label distribution. To prevent row duplication on
//! 1:n and m:n joins, the right-hand table is first *normalized*: rows are
//! grouped by the join column and one **pseudo-random representative row**
//! is kept per key (the strategy ARDA uses, which the AutoFeat paper
//! adopts).
//!
//! ## Determinism model
//!
//! Representative picks are a pure function of `(seed, key, row content)`:
//! each row carries a **seed-independent** stable content fingerprint, and
//! for each duplicated key the row minimizing `mix(seed, fingerprint)` wins.
//! This makes the pick independent of
//!
//! * **hash-map iteration order** — the old implementation drew from a
//!   shared RNG while iterating a `HashMap`, so which key consumed which
//!   draw depended on the map's randomized iteration order and results
//!   differed across *processes* for the same seed;
//! * **row insertion order** — permuting the right table's rows permutes
//!   the candidate indices but not their contents, so the same physical row
//!   is picked;
//! * **traversal order** — there is no shared RNG stream, so evaluating
//!   joins in a different order (or in parallel) cannot perturb the picks
//!   of unrelated joins;
//! * **caching** — because fingerprints do not bake the seed in, a
//!   [`JoinIndex`] built once per `(table, join column)` serves every seed:
//!   the per-seed work degrades from re-hashing every duplicate row's full
//!   content to one [`mix_u64`] per candidate. Cached and uncached joins are
//!   bit-identical by construction — [`left_join_normalized`] is literally
//!   [`left_join_with_index`] over a transient index.

use std::collections::{HashMap, HashSet};
use std::hash::Hasher;
use std::sync::Arc;

use autofeat_obs as obs;

use crate::column::Column;
use crate::error::Result;
use crate::keydict::{KeyDict, NULL_CODE};
use crate::stable_hash::{mix_u64, StableHasher};
use crate::table::Table;
use crate::value::Key;

/// Output of a left join: the joined table plus match statistics used by
/// the data-quality pruning rule.
#[derive(Debug, Clone)]
pub struct JoinOutput {
    /// The joined table. Left columns keep their names; right columns are
    /// prefixed with `{prefix}.` and deduplicated with `#k` suffixes when
    /// needed.
    pub table: Table,
    /// Number of left rows that found a match.
    pub matched: usize,
    /// Names of the columns contributed by the right table (post renaming).
    pub right_columns: Vec<String>,
}

impl JoinOutput {
    /// Fraction of left rows that found a match, in `[0, 1]` — or `None`
    /// when the left table has no rows.
    ///
    /// The distinction matters for pruning diagnostics: an **empty base**
    /// is *vacuous* (there was nothing to match), not *unjoinable* (keys
    /// exist but none overlap). Callers that count unjoinable paths should
    /// only do so when this returns `Some(0.0)`.
    pub fn match_ratio(&self) -> Option<f64> {
        if self.table.n_rows() == 0 {
            None
        } else {
            Some(self.matched as f64 / self.table.n_rows() as f64)
        }
    }
}

/// Seed-independent content fingerprint of one right-table row: hashes
/// every cell of the row (per-cell semantics live in
/// [`Column::hash_cell_into`]: NaN floats hash like nulls, `-0.0` like
/// `0.0`). Two rows with identical content always fingerprint identically,
/// so the representative pick cannot depend on where in the table a row
/// happens to sit — and because the seed is *not* part of the fingerprint,
/// one fingerprint pass serves every seed (the per-seed pick folds the
/// seed in with [`mix_u64`]).
///
/// The join key is deliberately **not** hashed separately: fingerprints
/// are only ever compared within one key's group, where the key — being
/// one of the row's cells — is already part of every fingerprint and a
/// second hash of it would only cost build time (this function is the hot
/// loop of index construction; see `cache.index_build_secs` in run
/// traces).
fn content_fingerprint(right: &Table, row: usize) -> u64 {
    let mut h = StableHasher::new();
    for c in 0..right.n_cols() {
        right.column_at(c).hash_cell_into(row, &mut h);
    }
    h.finish()
}

/// Key → group map of a [`JoinIndex`]. Hashed with the process-stable FNV
/// hasher: index builds hash every right-table row once and probes hash
/// every left row once, so hashing cost is on the critical path, and the
/// DoS resistance of the default SipHash buys nothing against trusted lake
/// data. (Map *iteration* order never influences results — lookups and
/// per-group minimization are order-free — so the hasher choice is purely
/// a performance decision.)
type GroupMap = HashMap<Key, KeyGroup, std::hash::BuildHasherDefault<StableHasher>>;

/// The candidate rows of one join key inside a [`JoinIndex`].
///
/// Duplicated keys do not own their candidate list: they hold a range into
/// the index's single shared dup array. Keeping the per-key variant at two
/// words (instead of an owned `Vec` per key) is what lets a *retained* index
/// consist of exactly two heap blocks — see [`JoinIndex::build`].
#[derive(Debug, Clone, Copy)]
enum KeyGroup {
    /// Exactly one row carries this key: no fingerprint needed, the pick is
    /// forced for every seed.
    Unique(u32),
    /// Duplicated key: `dups[start..start + len]` holds the
    /// `(content fingerprint, row)` candidates. The per-seed representative
    /// minimizes `(mix(seed, fingerprint), row)`.
    Dups { start: u32, len: u32 },
}

/// Scratch per-key state used only while building, before compaction. The
/// shape (and the per-key `Vec` churn it implies) matches the pre-compaction
/// index layout; every allocation it makes is freed before `build` returns,
/// so consecutive builds recycle the same allocator blocks.
enum ScratchGroup {
    Unique(u32),
    Dups(Vec<(u64, u32)>),
}

type ScratchMap = HashMap<Key, ScratchGroup, std::hash::BuildHasherDefault<StableHasher>>;

/// A reusable join index for one `(right table, join column)` pair: join key
/// → candidate row group with precomputed seed-independent content
/// fingerprints.
///
/// Building the index does all the per-row work a normalized left join needs
/// from the right table — grouping rows by key and fingerprinting duplicate
/// rows — **once**. Resolving a seed's representative for a key is then one
/// hash probe plus one cheap [`mix_u64`] per duplicate candidate, instead of
/// a full re-hash of every duplicate row's content. Indexes are immutable
/// and shareable across threads ([`Send`]`+`[`Sync`]), which is what lets a
/// lake-wide cache serve the parallel discovery fan-out.
#[derive(Debug, Clone)]
pub struct JoinIndex {
    /// Hashed representation: key → group. Empty when `coded` is set.
    groups: GroupMap,
    /// Dictionary-coded representation, used when the right table carries
    /// ingest-built key metadata. Mutually exclusive with a populated
    /// `groups` map.
    coded: Option<CodedGroups>,
    /// All duplicate-key candidates, contiguous, grouped per key (each
    /// `KeyGroup::Dups` owns one disjoint range, in-key row order).
    dups: Vec<(u64, u32)>,
    n_rows: usize,
}

/// The dictionary-coded group table: `groups[code]` is the key group of the
/// dictionary's code `code`. Probes resolve `Key → code` through the shared
/// lake-owned dictionary (one FNV probe, same cost as the hashed map), but
/// the **build** degrades to a counting sort over the precomputed row codes
/// — no per-row key materialization, hashing, or map insertion — which is
/// where the hashed path spent its time.
#[derive(Debug, Clone)]
struct CodedGroups {
    dict: Arc<KeyDict>,
    groups: Vec<KeyGroup>,
    /// Row-only duplicate candidates (each `KeyGroup::Dups` range indexes
    /// here, in-key row order). Fingerprints are *not* copied per dup: the
    /// representative pick reads them through `row_fps`, so a retained
    /// coded index pins 4 bytes per duplicate row instead of 16 — the
    /// lake-wide cache holds dozens of these, and the smaller resident set
    /// is what keeps cold cached runs within their uncached ratio bound.
    dup_rows: Vec<u32>,
    /// The right table's ingest-built fingerprint vector, shared by `Arc`
    /// (lake-owned, charged to `Table::key_meta_bytes`). `None` only when
    /// the table had a fresh dictionary but invalidated fingerprints (e.g.
    /// after `with_column`); that build falls back to the shared
    /// `JoinIndex::dups` fingerprint array.
    row_fps: Option<Arc<Vec<u64>>>,
}

/// Placeholder row index for a code with no surviving rows. Cannot occur
/// when the dictionary is fresh (every code has ≥ 1 row by construction);
/// guarded in [`JoinIndex::representative`] anyway so a logic error shows
/// up as a non-match instead of an out-of-bounds row.
const ABSENT_ROW: u32 = u32::MAX;

impl JoinIndex {
    /// Build the index for `right` grouped by its `right_key` column.
    /// Fingerprints are only computed for keys with ≥ 2 rows, so unique-key
    /// tables pay nothing beyond the grouping.
    ///
    /// When the right table carries ingest-built key metadata
    /// ([`Table::with_key_dicts`]), the build dispatches to the
    /// dictionary-coded counting sort (see [`CodedGroups`]); otherwise it
    /// falls back to the hashed build. Both produce indexes whose joins are
    /// bit-identical.
    ///
    /// The hashed build runs in two phases: a scratch grouping pass (per-key
    /// `Vec`s, growth-chained map — all transient, freed before returning),
    /// then a compaction into exactly-sized storage: one group map allocated
    /// at final capacity and one contiguous dup array. A *retained* index —
    /// the lake-wide cache holds hundreds — therefore pins two uniform heap
    /// blocks instead of thousands of growth-sized ones. The earlier layout
    /// (an owned `Vec` per duplicated key, map kept at its grown capacity)
    /// made cold cached builds ~1.6–1.8× slower than transient ones: retained
    /// odd-sized blocks could not be recycled by subsequent builds, so every
    /// build paid fresh-page faults and allocator free-list churn that the
    /// build-then-drop path never saw.
    pub fn build(right: &Table, right_key: &Column) -> JoinIndex {
        // Resilience-test hook: an armed `panic_on_row` fault simulates a
        // poisoned table mid-build. One relaxed atomic load when disarmed.
        let panic_row = crate::faults::lookup(right.name()).and_then(|f| f.panic_on_row);
        if let Some(dict) = right.key_dict_for(right_key) {
            return Self::build_coded(right, Arc::clone(dict), panic_row);
        }
        Self::build_hashed(right, right_key, panic_row)
    }

    /// Counting-sort build over a dictionary-carrying column: one histogram
    /// pass over the precomputed `u32` row codes sizes every group, a second
    /// pass scatters rows (and, for duplicated keys, their fingerprints)
    /// into exactly-sized storage. Per-key duplicate lists come out in row
    /// order — the same order the hashed build's insertion produces — and
    /// fingerprints reuse the ingest-built row fingerprints when fresh, so
    /// the resulting index is **bit-identical** to a hashed build of the
    /// same data (asserted by the `coded_*` tests below).
    fn build_coded(right: &Table, dict: Arc<KeyDict>, panic_row: Option<usize>) -> JoinIndex {
        let codes = dict.row_codes();
        let n_keys = dict.len();
        // Pass 1: rows per code (the counting-sort histogram).
        let mut counts = vec![0u32; n_keys];
        for (row, &c) in codes.iter().enumerate() {
            if panic_row == Some(row) {
                panic!(
                    "injected fault: panic_on_row {row} building index for table `{}`",
                    right.name()
                );
            }
            if c != NULL_CODE {
                counts[c as usize] += 1;
            }
        }
        // Lay out groups: unique codes resolve in place, duplicated codes
        // reserve disjoint ranges of the shared dup array.
        let mut groups = vec![KeyGroup::Unique(ABSENT_ROW); n_keys];
        let mut cursor = vec![0u32; n_keys];
        let mut n_dup_rows = 0usize;
        for (code, &cnt) in counts.iter().enumerate() {
            if cnt >= 2 {
                cursor[code] = n_dup_rows as u32;
                groups[code] = KeyGroup::Dups { start: n_dup_rows as u32, len: cnt };
                n_dup_rows += cnt as usize;
            }
        }
        // Pass 2: scatter rows. Fingerprints are only needed for duplicated
        // keys; with fresh ingest-built per-row fingerprints the index just
        // shares the table's vector (`Arc` clone, zero copies) and stores
        // row ids alone. The cell-hashing fallback (stale fingerprints,
        // fresh dictionary) copies per-dup fingerprints as before.
        let n_rows = codes.len();
        if let Some(fps_arc) = right.row_fps_arc() {
            let mut dup_rows = vec![0u32; n_dup_rows];
            for (row, &c) in codes.iter().enumerate() {
                if c == NULL_CODE {
                    continue;
                }
                let code = c as usize;
                if counts[code] == 1 {
                    groups[code] = KeyGroup::Unique(row as u32);
                } else {
                    dup_rows[cursor[code] as usize] = row as u32;
                    cursor[code] += 1;
                }
            }
            return JoinIndex {
                groups: GroupMap::default(),
                coded: Some(CodedGroups {
                    dict,
                    groups,
                    dup_rows,
                    row_fps: Some(Arc::clone(fps_arc)),
                }),
                dups: Vec::new(),
                n_rows,
            };
        }
        let mut dups = vec![(0u64, 0u32); n_dup_rows];
        for (row, &c) in codes.iter().enumerate() {
            if c == NULL_CODE {
                continue;
            }
            let code = c as usize;
            if counts[code] == 1 {
                groups[code] = KeyGroup::Unique(row as u32);
            } else {
                dups[cursor[code] as usize] = (content_fingerprint(right, row), row as u32);
                cursor[code] += 1;
            }
        }
        JoinIndex {
            groups: GroupMap::default(),
            coded: Some(CodedGroups { dict, groups, dup_rows: Vec::new(), row_fps: None }),
            dups,
            n_rows,
        }
    }

    /// The original hashed build, used for tables without key metadata
    /// (join outputs, ad-hoc tables).
    fn build_hashed(right: &Table, right_key: &Column, panic_row: Option<usize>) -> JoinIndex {
        let mut scratch: ScratchMap = ScratchMap::default();
        let mut n_dup_rows = 0usize;
        for row in 0..right_key.len() {
            if panic_row == Some(row) {
                panic!(
                    "injected fault: panic_on_row {row} building index for table `{}`",
                    right.name()
                );
            }
            let Some(k) = right_key.key(row) else { continue };
            match scratch.entry(k) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(ScratchGroup::Unique(row as u32));
                }
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    n_dup_rows += 1;
                    match e.get_mut() {
                        ScratchGroup::Unique(first) => {
                            let first = *first;
                            n_dup_rows += 1; // the first row becomes a dup too
                            let dups = vec![
                                (content_fingerprint(right, first as usize), first),
                                (content_fingerprint(right, row), row as u32),
                            ];
                            e.insert(ScratchGroup::Dups(dups));
                        }
                        ScratchGroup::Dups(dups) => {
                            dups.push((content_fingerprint(right, row), row as u32));
                        }
                    }
                }
            }
        }
        // Compact: exact-capacity map + one shared dup array. Per-key dup
        // order is preserved, and the cross-key order (scratch iteration
        // order) is irrelevant — each group only ever reads its own range.
        let mut groups: GroupMap =
            GroupMap::with_capacity_and_hasher(scratch.len(), Default::default());
        let mut dups: Vec<(u64, u32)> = Vec::with_capacity(n_dup_rows);
        for (key, group) in scratch.drain() {
            let packed = match group {
                ScratchGroup::Unique(row) => KeyGroup::Unique(row),
                ScratchGroup::Dups(list) => {
                    let start = dups.len() as u32;
                    let len = list.len() as u32;
                    dups.extend(list);
                    KeyGroup::Dups { start, len }
                }
            };
            groups.insert(key, packed);
        }
        JoinIndex { groups, coded: None, dups, n_rows: right_key.len() }
    }

    /// The representative row for `key` under `seed`, or `None` when the key
    /// is absent. For duplicated keys the row minimizing
    /// `(mix(seed, fingerprint), row)` wins: deterministic per seed,
    /// independent of row insertion order (ties on the mix imply identical
    /// row content, where any pick is value-equivalent; the lower row index
    /// breaks them for full in-table determinism).
    pub fn representative(&self, key: &Key, seed: u64) -> Option<usize> {
        let group = match &self.coded {
            Some(c) => c.groups.get(c.dict.code(key)? as usize)?,
            None => self.groups.get(key)?,
        };
        match group {
            KeyGroup::Unique(ABSENT_ROW) => None,
            KeyGroup::Unique(row) => Some(*row as usize),
            KeyGroup::Dups { start, len } => {
                let range = *start as usize..(*start + *len) as usize;
                // Shared-fingerprint layout: row-only candidates, the mix
                // reads the lake-owned fingerprint vector. Same `(mix, row)`
                // minimization, hence the same pick to the bit.
                if let Some((fps, dup_rows)) = self
                    .coded
                    .as_ref()
                    .and_then(|c| c.row_fps.as_ref().map(|f| (f, &c.dup_rows)))
                {
                    return dup_rows[range]
                        .iter()
                        .min_by_key(|&&row| (mix_u64(seed, fps[row as usize]), row))
                        .map(|&row| row as usize);
                }
                self.dups[range]
                    .iter()
                    .min_by_key(|&&(fp, row)| (mix_u64(seed, fp), row))
                    .map(|&(_, row)| row as usize)
            }
        }
    }

    /// Number of distinct non-null join keys.
    pub fn n_keys(&self) -> usize {
        match &self.coded {
            Some(c) => c.groups.len(),
            None => self.groups.len(),
        }
    }

    /// Number of right-table rows indexed (including null-key rows, which
    /// are never indexed but were scanned).
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of rows belonging to duplicated keys (each resolvable to a
    /// precomputed fingerprint — owned or shared, depending on layout).
    pub fn n_dup_rows(&self) -> usize {
        self.dups.len() + self.coded.as_ref().map_or(0, |c| c.dup_rows.len())
    }

    /// Approximate heap footprint in bytes (keys + group table + dup array),
    /// for cache accounting and observability. Capacity-based, so it covers
    /// what the allocations actually pin — with the compact build both
    /// capacities equal their lengths (modulo the map's load factor).
    pub fn resident_bytes(&self) -> usize {
        // The coded group table is a plain vec; the dictionary it probes
        // through — and the shared fingerprint vector its duplicates read —
        // are lake-owned, shared by every index/encode over the column, so
        // they are charged to the lake (`Table::key_meta_bytes`), not to
        // this index or the cache budget.
        let own = match &self.coded {
            Some(c) => {
                c.groups.capacity() * std::mem::size_of::<KeyGroup>()
                    + c.dup_rows.capacity() * std::mem::size_of::<u32>()
            }
            None => self.groups.capacity() * std::mem::size_of::<(Key, KeyGroup)>(),
        };
        own + self.dups.capacity() * std::mem::size_of::<(u64, u32)>()
    }
}

/// Choose a fresh name for a right-hand column in the join result; `taken`
/// holds every name already present (left schema plus previously renamed
/// right columns).
fn disambiguate(base: &str, taken: &HashSet<String>) -> String {
    if !taken.contains(base) {
        return base.to_string();
    }
    let mut k = 2usize;
    loop {
        let cand = format!("{base}#{k}");
        if !taken.contains(cand.as_str()) {
            return cand;
        }
        k += 1;
    }
}

/// Left join `left` with `right` on `left.left_key = right.right_key`,
/// normalizing join cardinality so the result has exactly `left.n_rows()`
/// rows.
///
/// `seed` drives the representative-row picks for duplicated keys (see the
/// module docs for the determinism model); callers performing a sequence of
/// joins should derive a distinct seed per join from a stable identity
/// (e.g. the join path) rather than reusing one value, so that picks stay
/// decoupled across joins.
///
/// Right-hand columns are renamed to `{prefix}.{col}` (idempotently — a
/// column already carrying the prefix keeps it) and deduplicated against the
/// left schema. Null keys on either side never match, so a join between
/// unrelated columns yields an all-null right-hand side, which the τ pruning
/// rule then discards.
pub fn left_join_normalized(
    left: &Table,
    right: &Table,
    left_key: &str,
    right_key: &str,
    prefix: &str,
    seed: u64,
) -> Result<JoinOutput> {
    let rk = right.column(right_key)?;
    let index = {
        let _span = obs::span("index_build");
        JoinIndex::build(right, rk)
    };
    left_join_with_index(left, right, &index, left_key, prefix, seed)
}

/// [`left_join_normalized`] with a prebuilt [`JoinIndex`] for the right
/// table's join column.
///
/// The index must have been built over `right`'s join column (the caller —
/// typically a lake-wide cache — owns that association). Output is
/// **bit-identical** to [`left_join_normalized`] with the same arguments:
/// the uncached entry point is a thin wrapper that builds a transient index
/// and calls this function.
pub fn left_join_with_index(
    left: &Table,
    right: &Table,
    index: &JoinIndex,
    left_key: &str,
    prefix: &str,
    seed: u64,
) -> Result<JoinOutput> {
    let _span = obs::span("join");
    let lk = left.column(left_key)?;

    // Resilience-test hook: an armed `slow_join_ms` fault simulates a
    // pathological join. The sleep is chunked so a cancel or deadline cuts
    // it short through the ambient control.
    if let Some(ms) = crate::faults::lookup(right.name()).and_then(|f| f.slow_join_ms) {
        let until = std::time::Instant::now() + std::time::Duration::from_millis(ms);
        while std::time::Instant::now() < until {
            if let Some(reason) = crate::control::ambient_interrupted() {
                return Err(crate::error::DataError::Interrupted(reason));
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
    }

    let n = left.n_rows();
    obs::incr("join.calls");
    obs::add("join.left_rows", n as u64);
    // The row-match buffer is thread-local scratch reused across every join
    // this thread performs (all the hops of one path evaluation, and every
    // path a discovery worker evaluates): one warm allocation instead of a
    // fresh `n`-slot vec per join. The borrow spans probe + assembly; no
    // code below re-enters a join on the same thread.
    PROBE_SCRATCH.with(|cell| {
        let mut indices = cell.borrow_mut();
        indices.clear();
        indices.reserve(n);
        let mut matched = 0usize;
        for row in 0..n {
            // Cooperative poll every 4096 rows: one thread-local read when no
            // ambient control is installed, and never result-affecting — an
            // interrupt abandons the join entirely rather than truncating it.
            if row % 4096 == 0 {
                if let Some(reason) = crate::control::ambient_interrupted() {
                    return Err(crate::error::DataError::Interrupted(reason));
                }
            }
            let ix = lk.key(row).and_then(|k| index.representative(&k, seed));
            if ix.is_some() {
                matched += 1;
            }
            indices.push(ix);
        }

        // Assemble: all left columns, then all right columns (renamed). Left
        // columns are Arc-backed, so the clones here are O(1) pointer bumps —
        // the accumulated frontier is shared across hops, not deep-copied.
        let mut cols: Vec<(String, Column)> = Vec::with_capacity(left.n_cols() + right.n_cols());
        let mut taken: HashSet<String> = HashSet::with_capacity(left.n_cols() + right.n_cols());
        for i in 0..left.n_cols() {
            let name = left.field_at(i).name.clone();
            taken.insert(name.clone());
            cols.push((name, left.column_at(i).clone()));
        }
        let prefix_dot = format!("{prefix}.");
        let mut right_columns = Vec::with_capacity(right.n_cols());
        for i in 0..right.n_cols() {
            let rname = &right.field_at(i).name;
            let base = if rname.starts_with(&prefix_dot) {
                rname.clone()
            } else {
                format!("{prefix_dot}{rname}")
            };
            let name = disambiguate(&base, &taken);
            taken.insert(name.clone());
            right_columns.push(name.clone());
            cols.push((name, right.column_at(i).take_opt(&indices)));
        }

        let table = Table::new(left.name().to_string(), cols)?;
        Ok(JoinOutput { table, matched, right_columns })
    })
}

thread_local! {
    /// Per-thread probe/output scratch for [`left_join_with_index`].
    static PROBE_SCRATCH: std::cell::RefCell<Vec<Option<usize>>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn left() -> Table {
        Table::new(
            "base",
            vec![
                ("id", Column::from_ints([Some(1), Some(2), Some(3), None])),
                ("label", Column::from_bools([Some(true), Some(false), Some(true), Some(false)])),
            ],
        )
        .unwrap()
    }

    fn right() -> Table {
        Table::new(
            "ext",
            vec![
                ("key", Column::from_ints([Some(1), Some(1), Some(3), Some(9)])),
                ("feat", Column::from_floats([Some(10.0), Some(20.0), Some(30.0), Some(99.0)])),
            ],
        )
        .unwrap()
    }

    #[test]
    fn preserves_left_row_count() {
        let out = left_join_normalized(&left(), &right(), "id", "key", "ext", 42).unwrap();
        assert_eq!(out.table.n_rows(), 4);
    }

    #[test]
    fn unmatched_and_null_keys_get_nulls() {
        let out = left_join_normalized(&left(), &right(), "id", "key", "ext", 42).unwrap();
        // id=2 has no match; id=None never matches.
        assert_eq!(out.table.value("ext.feat", 1).unwrap(), Value::Null);
        assert_eq!(out.table.value("ext.feat", 3).unwrap(), Value::Null);
        assert_eq!(out.matched, 2);
        assert_eq!(out.match_ratio(), Some(0.5));
    }

    #[test]
    fn empty_left_table_is_vacuous_not_unjoinable() {
        let empty = Table::new(
            "base",
            vec![("id", Column::from_ints(Vec::<Option<i64>>::new()))],
        )
        .unwrap();
        let out = left_join_normalized(&empty, &right(), "id", "key", "ext", 42).unwrap();
        assert_eq!(out.matched, 0);
        // No rows ⇒ no ratio — distinct from a populated table with zero
        // matches, which reports Some(0.0).
        assert_eq!(out.match_ratio(), None);
    }

    #[test]
    fn duplicate_keys_are_normalized_to_one_representative() {
        let out = left_join_normalized(&left(), &right(), "id", "key", "ext", 42).unwrap();
        // id=1 matches exactly one of the two candidate rows (10.0 or 20.0),
        // never duplicating the left row.
        let v = out.table.value("ext.feat", 0).unwrap();
        assert!(v == Value::Float(10.0) || v == Value::Float(20.0));
        assert_eq!(out.table.n_rows(), 4);
    }

    #[test]
    fn representative_choice_is_deterministic_per_seed() {
        let a = left_join_normalized(&left(), &right(), "id", "key", "ext", 42).unwrap();
        let b = left_join_normalized(&left(), &right(), "id", "key", "ext", 42).unwrap();
        assert_eq!(a.table, b.table);
    }

    #[test]
    fn representative_choice_varies_with_seed() {
        // With many duplicates per key, different seeds must (for at least
        // one key) pick different representatives — the pick is seeded, not
        // a fixed "first row wins".
        let n = 64i64;
        let rkeys: Vec<Option<i64>> = (0..n).map(|i| Some(i / 8)).collect();
        let rvals: Vec<Option<i64>> = (0..n).map(Some).collect();
        let r = Table::new(
            "ext",
            vec![("key", Column::from_ints(rkeys)), ("v", Column::from_ints(rvals))],
        )
        .unwrap();
        let lkeys: Vec<Option<i64>> = (0..n / 8).map(Some).collect();
        let l = Table::new("base", vec![("id", Column::from_ints(lkeys))]).unwrap();
        let a = left_join_normalized(&l, &r, "id", "key", "ext", 1).unwrap();
        let b = left_join_normalized(&l, &r, "id", "key", "ext", 2).unwrap();
        assert_ne!(a.table, b.table, "seed must influence representative picks");
    }

    #[test]
    fn representative_picks_survive_row_permutation() {
        // Regression for the HashMap-iteration-order bug: permuting the
        // right table's row order must not change which representative each
        // key gets — picks are content-addressed, not index- or
        // RNG-stream-addressed.
        let rkeys = [3i64, 1, 1, 9, 3, 1, 3, 9];
        let rvals = [30i64, 10, 11, 90, 31, 12, 32, 91];
        let make_right = |order: &[usize]| {
            Table::new(
                "ext",
                vec![
                    (
                        "key",
                        Column::from_ints(order.iter().map(|&i| Some(rkeys[i])).collect::<Vec<_>>()),
                    ),
                    (
                        "feat",
                        Column::from_ints(order.iter().map(|&i| Some(rvals[i])).collect::<Vec<_>>()),
                    ),
                ],
            )
            .unwrap()
        };
        let l = Table::new(
            "base",
            vec![("id", Column::from_ints([Some(1), Some(3), Some(9)]))],
        )
        .unwrap();
        let identity: Vec<usize> = (0..rkeys.len()).collect();
        let baseline = left_join_normalized(&l, &make_right(&identity), "id", "key", "ext", 7)
            .unwrap();
        // Try several permutations, including full reversal.
        let perms: Vec<Vec<usize>> = vec![
            identity.iter().rev().copied().collect(),
            vec![4, 0, 6, 2, 5, 1, 7, 3],
            vec![1, 5, 2, 0, 3, 7, 4, 6],
        ];
        for p in perms {
            let permuted = left_join_normalized(&l, &make_right(&p), "id", "key", "ext", 7)
                .unwrap();
            assert_eq!(
                baseline.table, permuted.table,
                "row insertion order {p:?} changed representative picks"
            );
        }
    }

    #[test]
    fn right_columns_are_prefixed() {
        let out = left_join_normalized(&left(), &right(), "id", "key", "ext", 42).unwrap();
        assert_eq!(out.right_columns, vec!["ext.key".to_string(), "ext.feat".to_string()]);
        assert!(out.table.has_column("ext.key"));
        assert!(out.table.has_column("label"));
    }

    #[test]
    fn self_join_disambiguates_names() {
        let l = left();
        let out1 = left_join_normalized(&l, &right(), "id", "key", "ext", 42).unwrap();
        let out2 =
            left_join_normalized(&out1.table, &right(), "id", "key", "ext", 43).unwrap();
        assert!(out2.table.has_column("ext.feat"));
        assert!(out2.table.has_column("ext.feat#2"));
    }

    #[test]
    fn mismatched_types_yield_all_null_right_side() {
        let r = Table::new(
            "ext",
            vec![
                ("key", Column::from_strs([Some("a"), Some("b")])),
                ("feat", Column::from_ints([Some(1), Some(2)])),
            ],
        )
        .unwrap();
        let out = left_join_normalized(&left(), &r, "id", "key", "ext", 42).unwrap();
        assert_eq!(out.matched, 0);
        assert_eq!(out.match_ratio(), Some(0.0));
        assert_eq!(out.table.column("ext.feat").unwrap().null_count(), 4);
    }

    #[test]
    fn int_joins_integral_float_keys() {
        let r = Table::new(
            "ext",
            vec![
                ("key", Column::from_floats([Some(1.0), Some(2.0)])),
                ("feat", Column::from_ints([Some(100), Some(200)])),
            ],
        )
        .unwrap();
        let out = left_join_normalized(&left(), &r, "id", "key", "ext", 42).unwrap();
        assert_eq!(out.table.value("ext.feat", 0).unwrap(), Value::Int(100));
        assert_eq!(out.table.value("ext.feat", 1).unwrap(), Value::Int(200));
    }

    #[test]
    fn missing_key_column_errors() {
        assert!(left_join_normalized(&left(), &right(), "nope", "key", "p", 1).is_err());
        assert!(left_join_normalized(&left(), &right(), "id", "nope", "p", 1).is_err());
    }

    #[test]
    fn indexed_join_is_bit_identical_to_uncached() {
        let l = left();
        let r = right();
        let index = JoinIndex::build(&r, r.column("key").unwrap());
        for seed in [1u64, 7, 42, 0xdead_beef] {
            let plain = left_join_normalized(&l, &r, "id", "key", "ext", seed).unwrap();
            let indexed = left_join_with_index(&l, &r, &index, "id", "ext", seed).unwrap();
            assert_eq!(plain.table, indexed.table, "seed {seed}");
            assert_eq!(plain.matched, indexed.matched);
            assert_eq!(plain.right_columns, indexed.right_columns);
        }
    }

    #[test]
    fn one_index_serves_many_seeds() {
        // The whole point of seed-independent fingerprints: a single index
        // must reproduce every seed's picks, including seeds that differ.
        let n = 64i64;
        let rkeys: Vec<Option<i64>> = (0..n).map(|i| Some(i / 8)).collect();
        let rvals: Vec<Option<i64>> = (0..n).map(Some).collect();
        let r = Table::new(
            "ext",
            vec![("key", Column::from_ints(rkeys)), ("v", Column::from_ints(rvals))],
        )
        .unwrap();
        let lkeys: Vec<Option<i64>> = (0..n / 8).map(Some).collect();
        let l = Table::new("base", vec![("id", Column::from_ints(lkeys))]).unwrap();
        let index = JoinIndex::build(&r, r.column("key").unwrap());
        let a = left_join_with_index(&l, &r, &index, "id", "ext", 1).unwrap();
        let b = left_join_with_index(&l, &r, &index, "id", "ext", 2).unwrap();
        assert_ne!(a.table, b.table, "seed must influence picks through the index");
        for seed in [1u64, 2, 99] {
            let plain = left_join_normalized(&l, &r, "id", "key", "ext", seed).unwrap();
            let indexed = left_join_with_index(&l, &r, &index, "id", "ext", seed).unwrap();
            assert_eq!(plain.table, indexed.table, "seed {seed}");
        }
    }

    #[test]
    fn index_counts_keys_and_dups() {
        let r = right(); // keys 1,1,3,9 → 3 distinct, one dup group of 2
        let index = JoinIndex::build(&r, r.column("key").unwrap());
        assert_eq!(index.n_keys(), 3);
        assert_eq!(index.n_rows(), 4);
        assert_eq!(index.n_dup_rows(), 2);
        assert!(index.resident_bytes() > 0);
    }

    #[test]
    fn coded_index_is_bit_identical_to_hashed() {
        // Many duplicates per key so representative picks actually exercise
        // the fingerprint path, plus a null key row.
        let n = 96i64;
        let rkeys: Vec<Option<i64>> =
            (0..n).map(|i| if i % 13 == 0 { None } else { Some(i / 6) }).collect();
        let rvals: Vec<Option<i64>> = (0..n).map(Some).collect();
        let plain = Table::new(
            "ext",
            vec![("key", Column::from_ints(rkeys)), ("v", Column::from_ints(rvals))],
        )
        .unwrap();
        let keyed = plain.clone().with_key_dicts();
        let hashed = JoinIndex::build(&plain, plain.column("key").unwrap());
        let coded = JoinIndex::build(&keyed, keyed.column("key").unwrap());
        assert_eq!(hashed.n_keys(), coded.n_keys());
        assert_eq!(hashed.n_rows(), coded.n_rows());
        assert_eq!(hashed.n_dup_rows(), coded.n_dup_rows());
        for seed in [0u64, 1, 7, 42, 0xdead_beef] {
            for k in 0..(n / 6 + 1) {
                assert_eq!(
                    hashed.representative(&Key::Num(k), seed),
                    coded.representative(&Key::Num(k), seed),
                    "key {k} seed {seed}"
                );
            }
        }
        let lkeys: Vec<Option<i64>> = (0..n / 6).map(Some).collect();
        let l = Table::new("base", vec![("id", Column::from_ints(lkeys))]).unwrap();
        for seed in [1u64, 2, 99] {
            let a = left_join_with_index(&l, &plain, &hashed, "id", "ext", seed).unwrap();
            let b = left_join_with_index(&l, &keyed, &coded, "id", "ext", seed).unwrap();
            assert_eq!(a.table, b.table, "seed {seed}");
            assert_eq!(a.matched, b.matched);
        }
    }

    #[test]
    fn coded_index_survives_row_permutation() {
        let rkeys = [3i64, 1, 1, 9, 3, 1, 3, 9];
        let rvals = [30i64, 10, 11, 90, 31, 12, 32, 91];
        let make_right = |order: &[usize]| {
            Table::new(
                "ext",
                vec![
                    (
                        "key",
                        Column::from_ints(order.iter().map(|&i| Some(rkeys[i])).collect::<Vec<_>>()),
                    ),
                    (
                        "feat",
                        Column::from_ints(order.iter().map(|&i| Some(rvals[i])).collect::<Vec<_>>()),
                    ),
                ],
            )
            .unwrap()
            .with_key_dicts()
        };
        let l = Table::new(
            "base",
            vec![("id", Column::from_ints([Some(1), Some(3), Some(9)]))],
        )
        .unwrap();
        let identity: Vec<usize> = (0..rkeys.len()).collect();
        let baseline =
            left_join_normalized(&l, &make_right(&identity), "id", "key", "ext", 7).unwrap();
        let perms: Vec<Vec<usize>> = vec![
            identity.iter().rev().copied().collect(),
            vec![4, 0, 6, 2, 5, 1, 7, 3],
        ];
        for p in perms {
            let permuted =
                left_join_normalized(&l, &make_right(&p), "id", "key", "ext", 7).unwrap();
            assert_eq!(
                baseline.table, permuted.table,
                "row order {p:?} changed coded representative picks"
            );
        }
    }

    #[test]
    fn index_ignores_null_keys() {
        let r = Table::new(
            "ext",
            vec![
                ("key", Column::from_ints([Some(1), None, Some(2)])),
                ("v", Column::from_ints([Some(10), Some(20), Some(30)])),
            ],
        )
        .unwrap();
        let index = JoinIndex::build(&r, r.column("key").unwrap());
        assert_eq!(index.n_keys(), 2);
        assert_eq!(index.representative(&Key::Num(1), 42), Some(0));
        assert_eq!(index.representative(&Key::Num(2), 42), Some(2));
        assert_eq!(index.representative(&Key::Num(77), 42), None);
    }
}
