//! Schemas: ordered collections of named, typed fields.

use crate::value::DType;

/// A named, typed column descriptor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Column name, unique within a table.
    pub name: String,
    /// Logical type.
    pub dtype: DType,
}

impl Field {
    /// Construct a field.
    pub fn new(name: impl Into<String>, dtype: DType) -> Self {
        Field { name: name.into(), dtype }
    }
}

/// An ordered list of fields.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Build a schema from fields.
    pub fn new(fields: Vec<Field>) -> Self {
        Schema { fields }
    }

    /// The fields in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the schema has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Index of a field by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// Field by name.
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.fields.iter().find(|f| f.name == name)
    }

    /// All field names in order.
    pub fn names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_and_lookup() {
        let s = Schema::new(vec![
            Field::new("a", DType::Int),
            Field::new("b", DType::Str),
        ]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.index_of("b"), Some(1));
        assert_eq!(s.index_of("z"), None);
        assert_eq!(s.field("a").unwrap().dtype, DType::Int);
        assert_eq!(s.names(), vec!["a", "b"]);
    }

    #[test]
    fn empty_schema() {
        let s = Schema::default();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }
}
