//! Dictionary-encoded join-key domains.
//!
//! A [`KeyDict`] maps every distinct non-null join key of one column to a
//! dense `u32` code and materializes the per-row code sequence. Built once
//! at ingest, it moves the expensive part of index construction — key
//! materialization and hashing — out of the join hot path: `JoinIndex`
//! builds over a dictionary-carrying column degrade to a counting sort over
//! `u32` codes (see `join::JoinIndex`), and label encoding reuses the codes
//! through a dense remap table instead of re-hashing every cell
//! (`encode::label_encode_column_with_dict`).
//!
//! ## Code assignment is permutation-stable
//!
//! Codes are **not** assigned by first appearance. The distinct keys are
//! ordered by their process-stable FNV hash ([`StableHasher`]), with the
//! key's total order breaking hash ties, and codes are dense ranks in that
//! order. Two row-permuted copies of the same column therefore build the
//! *identical* key → code mapping, which keeps every downstream artifact
//! that leaks code order (nothing does today, but dictionaries outlive any
//! single call site) independent of physical row order — the same
//! discipline the join layer's content fingerprints follow.
//!
//! Null keys (null cells, NaN floats) never get a code; their rows carry
//! the [`NULL_CODE`] sentinel in the row-code sequence.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};

use crate::column::Column;
use crate::stable_hash::StableHasher;
use crate::value::Key;

/// Row-code sentinel for rows whose key is null (never a valid code: a
/// column would need 2³² − 1 distinct keys to collide, beyond the row
/// counts this engine targets).
pub const NULL_CODE: u32 = u32::MAX;

type DictMap = HashMap<Key, u32, BuildHasherDefault<StableHasher>>;

fn stable_key_hash(key: &Key) -> u64 {
    let mut h = StableHasher::new();
    key.hash(&mut h);
    h.finish()
}

/// A per-column dictionary: distinct non-null keys ↔ dense `u32` codes,
/// plus the column's row → code sequence.
///
/// Immutable once built and shared via `Arc` from the owning [`Table`]'s
/// key metadata (`Table::with_key_dicts`), so clones are pointer bumps and
/// one dictionary serves every join, encode, and index build that touches
/// the column.
///
/// [`Table`]: crate::table::Table
#[derive(Debug, Clone, PartialEq)]
pub struct KeyDict {
    /// code → key, in code order.
    keys: Vec<Key>,
    /// key → code. Same FNV hasher as the join layer's group maps: hashing
    /// sits on the probe path and the data is trusted lake content.
    map: DictMap,
    /// row → code (`NULL_CODE` for null keys). Same length as the column.
    codes: Vec<u32>,
}

impl KeyDict {
    /// Build the dictionary for one column. Two passes: assign provisional
    /// slots by first appearance (one hash per row — the same work a single
    /// index build used to do), then re-rank the distinct keys by
    /// `(stable hash, key order)` so the final codes are permutation-stable.
    pub fn build(col: &Column) -> KeyDict {
        let n = col.len();
        let mut map = DictMap::default();
        let mut slot_keys: Vec<Key> = Vec::new();
        let mut slots: Vec<u32> = Vec::with_capacity(n);
        for row in 0..n {
            match col.key(row) {
                None => slots.push(NULL_CODE),
                Some(k) => {
                    let next = slot_keys.len() as u32;
                    let slot = match map.entry(k) {
                        Entry::Occupied(e) => *e.get(),
                        Entry::Vacant(e) => {
                            slot_keys.push(e.key().clone());
                            e.insert(next);
                            next
                        }
                    };
                    slots.push(slot);
                }
            }
        }

        // Permutation-stable ranking: stable hash first (cheap, collision
        // ties are rare), total key order as the deterministic tiebreak.
        let hashes: Vec<u64> = slot_keys.iter().map(stable_key_hash).collect();
        let mut order: Vec<u32> = (0..slot_keys.len() as u32).collect();
        order.sort_unstable_by(|&a, &b| {
            hashes[a as usize]
                .cmp(&hashes[b as usize])
                .then_with(|| slot_keys[a as usize].cmp(&slot_keys[b as usize]))
        });
        let mut code_of_slot = vec![0u32; slot_keys.len()];
        for (code, &slot) in order.iter().enumerate() {
            code_of_slot[slot as usize] = code as u32;
        }
        let keys: Vec<Key> = order.iter().map(|&s| slot_keys[s as usize].clone()).collect();
        for v in map.values_mut() {
            *v = code_of_slot[*v as usize];
        }
        let codes: Vec<u32> = slots
            .into_iter()
            .map(|s| if s == NULL_CODE { NULL_CODE } else { code_of_slot[s as usize] })
            .collect();
        KeyDict { keys, map, codes }
    }

    /// Number of distinct non-null keys (= number of valid codes).
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when the column held no non-null keys.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Number of rows the dictionary was built over. Used as a freshness
    /// check by `Table::key_dict_for`.
    pub fn n_rows(&self) -> usize {
        self.codes.len()
    }

    /// The code of `key`, or `None` when the key never occurs.
    pub fn code(&self, key: &Key) -> Option<u32> {
        self.map.get(key).copied()
    }

    /// The per-row code sequence (`NULL_CODE` for null keys), in row order.
    pub fn row_codes(&self) -> &[u32] {
        &self.codes
    }

    /// The key carrying `code`. Panics on an out-of-range code.
    pub fn key_at(&self, code: u32) -> &Key {
        &self.keys[code as usize]
    }

    /// Approximate heap footprint, for lake-level accounting. String key
    /// payloads are charged once per distinct key (`keys` and the map share
    /// the `Arc<str>` payloads, so only one side counts them).
    pub fn resident_bytes(&self) -> usize {
        let key_payload: usize = self
            .keys
            .iter()
            .map(|k| match k {
                Key::Str(s) => s.len(),
                _ => 0,
            })
            .sum();
        self.keys.capacity() * std::mem::size_of::<Key>()
            + self.map.capacity() * std::mem::size_of::<(Key, u32)>()
            + self.codes.capacity() * std::mem::size_of::<u32>()
            + key_payload
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skey(s: &str) -> Key {
        Key::Str(std::sync::Arc::from(s))
    }

    #[test]
    fn codes_are_dense_and_roundtrip() {
        let col = Column::from_strs([Some("b"), Some("a"), None, Some("b"), Some("c")]);
        let d = KeyDict::build(&col);
        assert_eq!(d.len(), 3);
        assert_eq!(d.n_rows(), 5);
        let codes = d.row_codes();
        assert_eq!(codes.len(), 5);
        assert_eq!(codes[2], NULL_CODE);
        assert_eq!(codes[0], codes[3], "equal keys share a code");
        for row in [0usize, 1, 3, 4] {
            let key = col.key(row).unwrap();
            let code = codes[row];
            assert!(code < 3);
            assert_eq!(d.code(&key), Some(code));
            assert_eq!(d.key_at(code), &key);
        }
        assert_eq!(d.code(&skey("zzz")), None);
    }

    #[test]
    fn codes_survive_row_permutation() {
        let vals = ["x", "y", "x", "z", "w", "y", "x"];
        let fwd = Column::from_strs(vals.iter().copied().map(Some));
        let rev = Column::from_strs(vals.iter().rev().copied().map(Some));
        let df = KeyDict::build(&fwd);
        let dr = KeyDict::build(&rev);
        assert_eq!(df.len(), dr.len());
        for v in ["x", "y", "z", "w"] {
            assert_eq!(df.code(&skey(v)), dr.code(&skey(v)), "key {v}");
        }
    }

    #[test]
    fn int_and_integral_float_share_codes() {
        let ints = Column::from_ints([Some(5), Some(7)]);
        let floats = Column::from_floats([Some(5.0), Some(7.0)]);
        let di = KeyDict::build(&ints);
        let df = KeyDict::build(&floats);
        assert_eq!(di.code(&Key::Num(5)), df.code(&Key::Num(5)));
        assert_eq!(di.row_codes(), df.row_codes());
    }

    #[test]
    fn all_null_column_is_empty() {
        let col = Column::from_ints([None, None]);
        let d = KeyDict::build(&col);
        assert!(d.is_empty());
        assert_eq!(d.row_codes(), &[NULL_CODE, NULL_CODE]);
        assert!(d.resident_bytes() > 0); // codes vec still counts
    }
}
