//! A process- and platform-stable 64-bit hasher (FNV-1a).
//!
//! `std::collections::HashMap` uses a per-instance randomized hasher, and
//! even `DefaultHasher::new()` is only stable within one compiler release.
//! Determinism-critical code (per-hop join seeding, representative-row
//! picks) must instead hash through this FNV-1a implementation, whose
//! output is a pure function of the bytes fed to it — identical across
//! processes, platforms, and Rust versions.

use std::hash::Hasher;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64-bit [`Hasher`]. Construct with `StableHasher::default()`, feed
/// it via the `Hash`/`Hasher` traits, and read the digest with `finish()`.
#[derive(Debug, Clone)]
pub struct StableHasher(u64);

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher(FNV_OFFSET)
    }
}

impl StableHasher {
    /// Fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Hasher for StableHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
}

/// Hash one string with a seed — convenience for call sites that would
/// otherwise build a hasher for a single field.
pub fn stable_hash_str(seed: u64, s: &str) -> u64 {
    let mut h = StableHasher::new();
    h.write_u64(seed);
    h.write(s.as_bytes());
    h.write_u8(0xff); // length terminator, as std's str hashing does
    h.finish()
}

/// Bit-mix a pair of `u64`s into one (SplitMix64 finalizer over the XOR of
/// the rotated halves). Used to fold derived seeds together cheaply.
pub fn mix_u64(a: u64, b: u64) -> u64 {
    // The golden-gamma offset keeps (0, 0) away from the finalizer's fixed
    // point at zero.
    let mut z = a.wrapping_add(0x9E37_79B9_7F4A_7C15) ^ b.rotate_left(31);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    #[test]
    fn fnv_known_vector() {
        // FNV-1a("a") = 0xaf63dc4c8601ec8c
        let mut h = StableHasher::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn deterministic_across_instances() {
        let digest = |s: &str| {
            let mut h = StableHasher::new();
            s.hash(&mut h);
            h.finish()
        };
        assert_eq!(digest("join-path"), digest("join-path"));
        assert_ne!(digest("join-path"), digest("join-patH"));
    }

    #[test]
    fn seeded_str_hash_varies_with_seed_and_content() {
        assert_ne!(stable_hash_str(1, "x"), stable_hash_str(2, "x"));
        assert_ne!(stable_hash_str(1, "x"), stable_hash_str(1, "y"));
        assert_eq!(stable_hash_str(7, "x"), stable_hash_str(7, "x"));
    }

    #[test]
    fn mix_is_not_symmetric_or_trivial() {
        assert_ne!(mix_u64(1, 2), mix_u64(2, 1));
        assert_ne!(mix_u64(0, 0), 0);
    }
}
