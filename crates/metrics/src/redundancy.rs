//! Redundancy criteria (§V-D): MIFS, MRMR, CIFE, JMI, CMIM.
//!
//! All five instantiate the unified conditional-likelihood-maximisation
//! framework (Eq. 1 of the paper):
//!
//! ```text
//! J(X_k) = I(X_k;Y) − β · Σ_{X_j∈S} I(X_j;X_k) + λ · Σ_{X_j∈S} I(X_j;X_k|Y)
//! ```
//!
//! with CMIM as the special case (Eq. 2):
//!
//! ```text
//! J(X_k) = I(X_k;Y) − max_{X_j∈S} [ I(X_j;X_k) − I(X_j;X_k|Y) ]
//! ```
//!
//! A candidate with `J(X_k) > 0` adds more label information than it
//! duplicates and is considered non-redundant.

use crate::discretize::{discretize_equal_frequency, Discretized};
use crate::mi::{mi_and_cmi, mutual_information, mutual_information_corrected as mi_est};
use crate::relevance::DEFAULT_BINS;

/// The redundancy criteria compared in §V-D.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RedundancyMethod {
    /// Mutual Information Feature Selection: fixed β (paper uses 0.5), λ=0.
    Mifs {
        /// The β penalty weight.
        beta: f64,
    },
    /// Minimum Redundancy Maximum Relevance: β=1/|S|, λ=0 (paper's choice).
    Mrmr,
    /// Conditional Infomax Feature Extraction: β=1, λ=1.
    Cife,
    /// Joint Mutual Information: β=1/|S|, λ=1/|S|.
    Jmi,
    /// Conditional Mutual Information Maximization (Eq. 2).
    Cmim,
}

impl RedundancyMethod {
    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            RedundancyMethod::Mifs { .. } => "MIFS",
            RedundancyMethod::Mrmr => "MRMR",
            RedundancyMethod::Cife => "CIFE",
            RedundancyMethod::Jmi => "JMI",
            RedundancyMethod::Cmim => "CMIM",
        }
    }

    /// All methods with the paper's parameterization, in the paper's order.
    pub fn all() -> [RedundancyMethod; 5] {
        [
            RedundancyMethod::Mifs { beta: 0.5 },
            RedundancyMethod::Mrmr,
            RedundancyMethod::Cife,
            RedundancyMethod::Jmi,
            RedundancyMethod::Cmim,
        ]
    }

    /// Whether the criterion needs conditional MI terms (the expensive part
    /// — the paper notes MIFS/MRMR are ~3× faster for skipping it).
    pub fn needs_conditional(self) -> bool {
        matches!(
            self,
            RedundancyMethod::Cife | RedundancyMethod::Jmi | RedundancyMethod::Cmim
        )
    }
}

/// Scores candidates against an already-selected feature set using a
/// [`RedundancyMethod`]. Discretizes inputs once and caches codes.
#[derive(Debug, Clone)]
pub struct RedundancyScorer {
    method: RedundancyMethod,
    bins: u32,
}

impl RedundancyScorer {
    /// Scorer with the default bin count.
    pub fn new(method: RedundancyMethod) -> Self {
        RedundancyScorer { method, bins: DEFAULT_BINS }
    }

    /// Scorer with an explicit bin count.
    pub fn with_bins(method: RedundancyMethod, bins: u32) -> Self {
        RedundancyScorer { method, bins }
    }

    /// The configured method.
    pub fn method(&self) -> RedundancyMethod {
        self.method
    }

    /// Discretize a continuous feature with this scorer's bin count.
    pub fn codes(&self, x: &[f64]) -> Discretized {
        discretize_equal_frequency(x, self.bins)
    }

    /// Compute `J(X_k)` for a candidate given the selected set `S` and the
    /// labels, all pre-discretized.
    ///
    /// Estimator note: MIFS/MRMR use **Miller-Madow bias-corrected** MI —
    /// their penalty is a bare sum of `I(X_j;X_k)` terms, and the plug-in
    /// estimator's positive bias (≈ `(B−1)²/2N ln 2` per term) would
    /// otherwise drown weak-but-fresh candidates. The conditional criteria
    /// (CIFE/JMI/CMIM) keep the plug-in estimator: their paired
    /// `I(X_j;X_k) − I(X_j;X_k|Y)` terms carry near-identical bias that
    /// cancels within the pair, and correcting the two terms differently
    /// would break the exact cancellation for deterministic relations.
    pub fn score_codes(
        &self,
        candidate: &Discretized,
        selected: &[&Discretized],
        labels: &Discretized,
    ) -> f64 {
        let corrected = !self.method.needs_conditional();
        let rel = if corrected {
            mi_est(candidate, labels)
        } else {
            mutual_information(candidate, labels)
        };
        if selected.is_empty() {
            return rel;
        }
        match self.method {
            RedundancyMethod::Mifs { beta } => {
                let red: f64 = selected
                    .iter()
                    .map(|s| mi_est(s, candidate))
                    .sum();
                rel - beta * red
            }
            RedundancyMethod::Mrmr => {
                let red: f64 = selected
                    .iter()
                    .map(|s| mi_est(s, candidate))
                    .sum();
                rel - red / selected.len() as f64
            }
            // The conditional criteria evaluate the I(X_j;X_k) and
            // I(X_j;X_k|Y) pair per selected feature; `mi_and_cmi` fills one
            // shared contingency pass for both (bit-identical to the two
            // separate estimator calls).
            RedundancyMethod::Cife => {
                let mut j = rel;
                for s in selected {
                    let (mi, cmi) = mi_and_cmi(s, candidate, labels);
                    j -= mi;
                    j += cmi;
                }
                j
            }
            RedundancyMethod::Jmi => {
                let inv = 1.0 / selected.len() as f64;
                let mut j = rel;
                for s in selected {
                    let (mi, cmi) = mi_and_cmi(s, candidate, labels);
                    j -= inv * mi;
                    j += inv * cmi;
                }
                j
            }
            RedundancyMethod::Cmim => {
                let worst = selected
                    .iter()
                    .map(|s| {
                        let (mi, cmi) = mi_and_cmi(s, candidate, labels);
                        mi - cmi
                    })
                    .fold(f64::NEG_INFINITY, f64::max);
                rel - worst.max(0.0)
            }
        }
    }

    /// Convenience: score raw (continuous) slices.
    pub fn score(&self, candidate: &[f64], selected: &[&[f64]], labels: &[i64]) -> f64 {
        let cand = self.codes(candidate);
        let sel: Vec<Discretized> = selected.iter().map(|s| self.codes(s)).collect();
        let sel_refs: Vec<&Discretized> = sel.iter().collect();
        let y = Discretized::from_codes(labels.iter().map(|&l| Some(l)));
        self.score_codes(&cand, &sel_refs, &y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// y depends on x1; x2 = copy of x1 (redundant); x3 independent noise.
    fn fixture() -> (Vec<f64>, Vec<f64>, Vec<f64>, Vec<i64>) {
        let n = 200;
        let x1: Vec<f64> = (0..n).map(|i| (i % 10) as f64).collect();
        let x2 = x1.clone();
        let x3: Vec<f64> = (0..n).map(|i| ((i * 7 + 3) % 13) as f64).collect();
        let y: Vec<i64> = x1.iter().map(|&v| i64::from(v >= 5.0)).collect();
        (x1, x2, x3, y)
    }

    #[test]
    fn empty_selected_set_reduces_to_relevance() {
        let (x1, _, _, y) = fixture();
        for m in RedundancyMethod::all() {
            let s = RedundancyScorer::new(m);
            let j = s.score(&x1, &[], &y);
            assert!(j > 0.9, "{}: J without S should be ≈ I(X;Y)=1 bit, got {j}", m.name());
        }
    }

    #[test]
    fn duplicate_feature_is_redundant_under_all_methods() {
        let (x1, x2, _, y) = fixture();
        for m in RedundancyMethod::all() {
            let s = RedundancyScorer::new(m);
            let j = s.score(&x2, &[&x1], &y);
            assert!(
                j <= 1e-9,
                "{}: exact duplicate should score ≤ 0, got {j}",
                m.name()
            );
        }
    }

    #[test]
    fn independent_informative_feature_stays_positive() {
        // y = x1 XOR-ish with a second informative independent feature x4.
        let n = 200;
        let x1: Vec<f64> = (0..n).map(|i| ((i / 2) % 2) as f64).collect();
        let x4: Vec<f64> = (0..n).map(|i| (i % 2) as f64).collect();
        let y: Vec<i64> = (0..n).map(|i| (((i / 2) % 2) ^ (i % 2)) as i64).collect();
        // x4 alone has ~0 MI with y (XOR), but conditionally informative.
        let s = RedundancyScorer::new(RedundancyMethod::Cife);
        let j = s.score(&x4, &[&x1], &y);
        assert!(j > 0.9, "CIFE should credit conditional information, got {j}");
        // MRMR (no conditional term) scores it near zero instead.
        let s2 = RedundancyScorer::new(RedundancyMethod::Mrmr);
        let j2 = s2.score(&x4, &[&x1], &y);
        assert!(j2.abs() < 0.1, "MRMR has no conditional term, got {j2}");
    }

    #[test]
    fn noise_scores_near_zero() {
        let (x1, _, x3, y) = fixture();
        let s = RedundancyScorer::new(RedundancyMethod::Mrmr);
        let j = s.score(&x3, &[&x1], &y);
        assert!(j.abs() < 0.2, "noise J should be small, got {j}");
    }

    #[test]
    fn mrmr_averages_redundancy() {
        let (x1, x2, _, y) = fixture();
        // With two identical selected features, MRMR's penalty equals the
        // penalty with one (it averages), while MIFS(β=0.5) doubles it.
        let mrmr = RedundancyScorer::new(RedundancyMethod::Mrmr);
        let j1 = mrmr.score(&x2, &[&x1], &y);
        let j2 = mrmr.score(&x2, &[&x1, &x1], &y);
        assert!((j1 - j2).abs() < 1e-9);
        let mifs = RedundancyScorer::new(RedundancyMethod::Mifs { beta: 0.5 });
        let m1 = mifs.score(&x2, &[&x1], &y);
        let m2 = mifs.score(&x2, &[&x1, &x1], &y);
        assert!(m2 < m1 - 0.5, "MIFS penalty should grow with |S|");
    }

    #[test]
    fn cmim_takes_worst_case() {
        let (x1, x2, x3, y) = fixture();
        let s = RedundancyScorer::new(RedundancyMethod::Cmim);
        // Against {noise, duplicate}, the duplicate dominates the max.
        let j = s.score(&x2, &[&x3, &x1], &y);
        assert!(j <= 1e-9, "CMIM should punish the duplicate, got {j}");
    }

    #[test]
    fn needs_conditional_classification() {
        assert!(!RedundancyMethod::Mrmr.needs_conditional());
        assert!(!RedundancyMethod::Mifs { beta: 0.5 }.needs_conditional());
        assert!(RedundancyMethod::Cife.needs_conditional());
        assert!(RedundancyMethod::Jmi.needs_conditional());
        assert!(RedundancyMethod::Cmim.needs_conditional());
    }

    #[test]
    fn names_match_paper() {
        let names: Vec<&str> = RedundancyMethod::all().iter().map(|m| m.name()).collect();
        assert_eq!(names, vec!["MIFS", "MRMR", "CIFE", "JMI", "CMIM"]);
    }
}
