//! Rank transforms for Spearman correlation.

/// Average (fractional) ranks of `values`, 1-based, with ties receiving the
/// mean of the ranks they span. `NaN`s receive `NaN` ranks and are excluded
/// from the ranking of the rest.
pub fn average_ranks(values: &[f64]) -> Vec<f64> {
    let mut idx = Vec::new();
    let mut ranks = Vec::new();
    average_ranks_into(values, &mut idx, &mut ranks);
    ranks
}

/// [`average_ranks`] into caller-owned buffers: `idx` is sort scratch,
/// `ranks` receives the result (both cleared and refilled). Hot loops that
/// rank column after column (Spearman over every candidate feature) reuse
/// two warm allocations instead of allocating per call. The math — sort
/// order, tie averaging — is identical to [`average_ranks`].
pub fn average_ranks_into(values: &[f64], idx: &mut Vec<usize>, ranks: &mut Vec<f64>) {
    idx.clear();
    idx.extend((0..values.len()).filter(|&i| values[i].is_finite()));
    idx.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).expect("finite"));
    ranks.clear();
    ranks.resize(values.len(), f64::NAN);
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && values[idx[j + 1]] == values[idx[i]] {
            j += 1;
        }
        // ranks i+1 ..= j+1 (1-based), average
        let avg = (i + 1 + j + 1) as f64 / 2.0;
        for &k in &idx[i..=j] {
            ranks[k] = avg;
        }
        i = j + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_ranks() {
        assert_eq!(average_ranks(&[30.0, 10.0, 20.0]), vec![3.0, 1.0, 2.0]);
    }

    #[test]
    fn ties_get_average() {
        let r = average_ranks(&[1.0, 2.0, 2.0, 3.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn all_tied() {
        let r = average_ranks(&[5.0, 5.0, 5.0]);
        assert_eq!(r, vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn nan_excluded() {
        let r = average_ranks(&[2.0, f64::NAN, 1.0]);
        assert!(r[1].is_nan());
        assert_eq!(r[0], 2.0);
        assert_eq!(r[2], 1.0);
    }

    #[test]
    fn empty_input() {
        assert!(average_ranks(&[]).is_empty());
    }

    #[test]
    fn into_variant_reuses_buffers_and_matches() {
        let mut idx = vec![99usize; 8];
        let mut ranks = vec![1.0f64; 8];
        for vals in [
            vec![3.0, 1.0, 2.0, 2.0],
            vec![f64::NAN, 5.0],
            vec![],
            vec![7.0, 7.0, 7.0],
        ] {
            average_ranks_into(&vals, &mut idx, &mut ranks);
            let fresh = average_ranks(&vals);
            assert_eq!(ranks.len(), fresh.len());
            for (a, b) in ranks.iter().zip(&fresh) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }
}
