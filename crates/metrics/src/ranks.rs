//! Rank transforms for Spearman correlation.

/// Average (fractional) ranks of `values`, 1-based, with ties receiving the
/// mean of the ranks they span. `NaN`s receive `NaN` ranks and are excluded
/// from the ranking of the rest.
pub fn average_ranks(values: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..values.len()).filter(|&i| values[i].is_finite()).collect();
    idx.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).expect("finite"));
    let mut ranks = vec![f64::NAN; values.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && values[idx[j + 1]] == values[idx[i]] {
            j += 1;
        }
        // ranks i+1 ..= j+1 (1-based), average
        let avg = (i + 1 + j + 1) as f64 / 2.0;
        for &k in &idx[i..=j] {
            ranks[k] = avg;
        }
        i = j + 1;
    }
    ranks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_ranks() {
        assert_eq!(average_ranks(&[30.0, 10.0, 20.0]), vec![3.0, 1.0, 2.0]);
    }

    #[test]
    fn ties_get_average() {
        let r = average_ranks(&[1.0, 2.0, 2.0, 3.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn all_tied() {
        let r = average_ranks(&[5.0, 5.0, 5.0]);
        assert_eq!(r, vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn nan_excluded() {
        let r = average_ranks(&[2.0, f64::NAN, 1.0]);
        assert!(r[1].is_nan());
        assert_eq!(r[0], 2.0);
        assert_eq!(r[2], 1.0);
    }

    #[test]
    fn empty_input() {
        assert!(average_ranks(&[]).is_empty());
    }
}
