//! Relevance measures (§V-C): Information Gain, Symmetrical Uncertainty,
//! Pearson, Spearman, and Relief.
//!
//! Each measure scores features against the class label. Higher is more
//! relevant. Pearson/Spearman report the **absolute** correlation so that
//! strongly negative predictors rank as relevant (the paper sorts by
//! correlation score for the *select-κ-best* heuristic).

use crate::discretize::{discretize_equal_frequency, Discretized};
use crate::entropy::entropy;
use crate::mi::mutual_information;
use crate::ranks::average_ranks_into;

/// Number of bins used when discretizing continuous features for the
/// information-theoretic measures.
pub const DEFAULT_BINS: u32 = 10;

/// The relevance methods evaluated in §V-C of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RelevanceMethod {
    /// Information gain `I(X;Y)`.
    InformationGain,
    /// Symmetrical uncertainty `2·I(X;Y)/(H(X)+H(Y))`.
    SymmetricalUncertainty,
    /// Absolute Pearson correlation.
    Pearson,
    /// Absolute Spearman rank correlation (the paper's choice).
    Spearman,
    /// Relief feature weighting.
    Relief,
}

impl RelevanceMethod {
    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            RelevanceMethod::InformationGain => "IG",
            RelevanceMethod::SymmetricalUncertainty => "SU",
            RelevanceMethod::Pearson => "Pearson",
            RelevanceMethod::Spearman => "Spearman",
            RelevanceMethod::Relief => "Relief",
        }
    }

    /// All methods, in the paper's order.
    pub fn all() -> [RelevanceMethod; 5] {
        [
            RelevanceMethod::InformationGain,
            RelevanceMethod::SymmetricalUncertainty,
            RelevanceMethod::Pearson,
            RelevanceMethod::Spearman,
            RelevanceMethod::Relief,
        ]
    }

    /// Score every feature against the labels. `features[j]` is the j-th
    /// feature's values with `NaN` for missing; `labels` are integer class
    /// codes.
    /// The label-side work (discretization, label entropy, the numeric cast)
    /// is identical for every feature, so it is hoisted out of the loop here
    /// rather than recomputed per column as the single-feature
    /// [`Relevance::score`] implementations do. Scores are bit-identical to
    /// calling `score` per feature.
    pub fn scores(self, features: &[Vec<f64>], labels: &[i64]) -> Vec<f64> {
        match self {
            RelevanceMethod::InformationGain => {
                let dy = label_codes(labels);
                features
                    .iter()
                    .map(|x| {
                        mutual_information(&discretize_equal_frequency(x, DEFAULT_BINS), &dy)
                    })
                    .collect()
            }
            RelevanceMethod::SymmetricalUncertainty => {
                let dy = label_codes(labels);
                let hy = entropy(&dy);
                features
                    .iter()
                    .map(|x| {
                        let dx = discretize_equal_frequency(x, DEFAULT_BINS);
                        let hx = entropy(&dx);
                        if hx + hy == 0.0 {
                            return 0.0;
                        }
                        (2.0 * mutual_information(&dx, &dy) / (hx + hy)).clamp(0.0, 1.0)
                    })
                    .collect()
            }
            RelevanceMethod::Pearson => {
                let y: Vec<f64> = labels.iter().map(|&l| l as f64).collect();
                features.iter().map(|x| pearson_correlation(x, &y).abs()).collect()
            }
            RelevanceMethod::Spearman => {
                let y: Vec<f64> = labels.iter().map(|&l| l as f64).collect();
                features.iter().map(|x| spearman_correlation(x, &y).abs()).collect()
            }
            RelevanceMethod::Relief => Relief::default().scores(features, labels),
        }
    }
}

/// Per-feature relevance scoring.
pub trait Relevance {
    /// Score one feature against the labels; higher = more relevant.
    fn score(&self, x: &[f64], labels: &[i64]) -> f64;
}

/// Information gain `I(X;Y)` in bits.
#[derive(Debug, Clone, Copy, Default)]
pub struct InformationGain;

fn label_codes(labels: &[i64]) -> Discretized {
    Discretized::from_codes(labels.iter().map(|&l| Some(l)))
}

impl Relevance for InformationGain {
    fn score(&self, x: &[f64], labels: &[i64]) -> f64 {
        let dx = discretize_equal_frequency(x, DEFAULT_BINS);
        mutual_information(&dx, &label_codes(labels))
    }
}

/// Symmetrical uncertainty: `2·I(X;Y) / (H(X)+H(Y))`, in `[0,1]`.
#[derive(Debug, Clone, Copy, Default)]
pub struct SymmetricalUncertainty;

impl Relevance for SymmetricalUncertainty {
    fn score(&self, x: &[f64], labels: &[i64]) -> f64 {
        let dx = discretize_equal_frequency(x, DEFAULT_BINS);
        let dy = label_codes(labels);
        let hx = entropy(&dx);
        let hy = entropy(&dy);
        if hx + hy == 0.0 {
            return 0.0;
        }
        (2.0 * mutual_information(&dx, &dy) / (hx + hy)).clamp(0.0, 1.0)
    }
}

/// Absolute Pearson correlation between a feature and the (numeric) label
/// codes, with pairwise deletion of missing values.
#[derive(Debug, Clone, Copy, Default)]
pub struct Pearson;

/// Pearson correlation of two numeric slices, skipping rows where either is
/// non-finite. Returns 0 when degenerate (constant input or < 2 rows).
///
/// Allocation-free: the pairwise-present rows are visited twice (means, then
/// moments) instead of being materialised. Each accumulator sums the same
/// values in the same order as the old collected-pairs version, so results
/// are bit-identical.
pub fn pearson_correlation(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "length mismatch");
    let present = || {
        x.iter()
            .zip(y)
            .filter(|(a, b)| a.is_finite() && b.is_finite())
            .map(|(&a, &b)| (a, b))
    };
    let mut n = 0usize;
    let mut sum_x = 0.0;
    let mut sum_y = 0.0;
    for (a, b) in present() {
        n += 1;
        sum_x += a;
        sum_y += b;
    }
    if n < 2 {
        return 0.0;
    }
    let nf = n as f64;
    let mean_x = sum_x / nf;
    let mean_y = sum_y / nf;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    let mut sxy = 0.0;
    for (a, b) in present() {
        let dx = a - mean_x;
        let dy = b - mean_y;
        sxx += dx * dx;
        syy += dy * dy;
        sxy += dx * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return 0.0;
    }
    (sxy / (sxx.sqrt() * syy.sqrt())).clamp(-1.0, 1.0)
}

impl Relevance for Pearson {
    fn score(&self, x: &[f64], labels: &[i64]) -> f64 {
        let y: Vec<f64> = labels.iter().map(|&l| l as f64).collect();
        pearson_correlation(x, &y).abs()
    }
}

/// Absolute Spearman rank correlation — Pearson over average ranks. The
/// paper's recommended relevance measure.
#[derive(Debug, Clone, Copy, Default)]
pub struct Spearman;

/// Signed Spearman correlation of two numeric slices.
///
/// The gathered columns and both rank buffers live in thread-local scratch:
/// ranking every candidate feature against the label reuses five warm
/// allocations instead of paying five fresh ones per call. Ranks and the
/// final Pearson are computed exactly as before.
pub fn spearman_correlation(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "length mismatch");
    SPEARMAN_SCRATCH.with(|cell| {
        let scratch = &mut *cell.borrow_mut();
        // Pairwise deletion first so the ranks are computed on the common rows.
        scratch.xs.clear();
        scratch.ys.clear();
        for (a, b) in x.iter().zip(y) {
            if a.is_finite() && b.is_finite() {
                scratch.xs.push(*a);
                scratch.ys.push(*b);
            }
        }
        if scratch.xs.len() < 2 {
            return 0.0;
        }
        average_ranks_into(&scratch.xs, &mut scratch.idx, &mut scratch.rx);
        average_ranks_into(&scratch.ys, &mut scratch.idx, &mut scratch.ry);
        pearson_correlation(&scratch.rx, &scratch.ry)
    })
}

#[derive(Default)]
struct SpearmanScratch {
    xs: Vec<f64>,
    ys: Vec<f64>,
    idx: Vec<usize>,
    rx: Vec<f64>,
    ry: Vec<f64>,
}

thread_local! {
    static SPEARMAN_SCRATCH: std::cell::RefCell<SpearmanScratch> =
        std::cell::RefCell::new(SpearmanScratch::default());
}

impl Relevance for Spearman {
    fn score(&self, x: &[f64], labels: &[i64]) -> f64 {
        let y: Vec<f64> = labels.iter().map(|&l| l as f64).collect();
        spearman_correlation(x, &y).abs()
    }
}

/// Relief feature weighting (Kira & Rendell style, simplified): for `m`
/// probe instances, reward features that differ on the nearest miss and
/// penalize features that differ on the nearest hit. Operates on all
/// features jointly (nearest neighbours use the full feature space).
#[derive(Debug, Clone, Copy)]
pub struct Relief {
    /// Number of probe instances (deterministic even spacing).
    pub n_probes: usize,
}

impl Default for Relief {
    fn default() -> Self {
        Relief { n_probes: 50 }
    }
}

impl Relief {
    /// Weight every feature; higher = more relevant, can be negative.
    pub fn scores(&self, features: &[Vec<f64>], labels: &[i64]) -> Vec<f64> {
        let n_feat = features.len();
        if n_feat == 0 {
            return Vec::new();
        }
        let n = labels.len();
        if n < 2 {
            return vec![0.0; n_feat];
        }
        // Range-normalize, replacing NaN with the feature midpoint.
        let mut norm: Vec<Vec<f64>> = Vec::with_capacity(n_feat);
        for f in features {
            let present: Vec<f64> = f.iter().copied().filter(|v| v.is_finite()).collect();
            let (lo, hi) = present.iter().fold((f64::INFINITY, f64::NEG_INFINITY), |acc, &v| {
                (acc.0.min(v), acc.1.max(v))
            });
            let range = if hi > lo { hi - lo } else { 1.0 };
            norm.push(
                f.iter()
                    .map(|&v| if v.is_finite() { (v - lo) / range } else { 0.5 })
                    .collect(),
            );
        }
        let dist = |a: usize, b: usize| -> f64 {
            norm.iter().map(|f| (f[a] - f[b]).abs()).sum()
        };
        let m = self.n_probes.min(n);
        let stride = n / m;
        let mut w = vec![0.0f64; n_feat];
        let mut probes = 0usize;
        for p in (0..n).step_by(stride.max(1)).take(m) {
            let mut best_hit: Option<(usize, f64)> = None;
            let mut best_miss: Option<(usize, f64)> = None;
            for other in 0..n {
                if other == p {
                    continue;
                }
                let d = dist(p, other);
                let slot = if labels[other] == labels[p] { &mut best_hit } else { &mut best_miss };
                if slot.is_none() || d < slot.expect("checked").1 {
                    *slot = Some((other, d));
                }
            }
            let (Some((hit, _)), Some((miss, _))) = (best_hit, best_miss) else {
                continue;
            };
            probes += 1;
            for (j, f) in norm.iter().enumerate() {
                w[j] += (f[p] - f[miss]).abs() - (f[p] - f[hit]).abs();
            }
        }
        if probes > 0 {
            for wj in &mut w {
                *wj /= probes as f64;
            }
        }
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn informative_feature(n: usize) -> (Vec<f64>, Vec<i64>) {
        // y = 1 iff x > 0.5 (with deterministic values).
        let x: Vec<f64> = (0..n).map(|i| i as f64 / n as f64).collect();
        let y: Vec<i64> = x.iter().map(|&v| i64::from(v > 0.5)).collect();
        (x, y)
    }

    #[test]
    fn ig_prefers_informative_feature() {
        let (x, y) = informative_feature(100);
        let noise: Vec<f64> = (0..100).map(|i| ((i * 37 + 11) % 100) as f64).collect();
        let ig = InformationGain;
        assert!(ig.score(&x, &y) > ig.score(&noise, &y));
    }

    #[test]
    fn su_bounded_and_high_for_perfect_predictor() {
        let (x, y) = informative_feature(100);
        let s = SymmetricalUncertainty.score(&x, &y);
        assert!(s > 0.3, "got {s}");
        assert!(s <= 1.0);
    }

    #[test]
    fn su_zero_for_constant_feature() {
        let y: Vec<i64> = (0..10).map(|i| i % 2).collect();
        let x = vec![1.0; 10];
        assert_eq!(SymmetricalUncertainty.score(&x, &y), 0.0);
    }

    #[test]
    fn pearson_perfect_linear() {
        let x: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 2.0 * v + 1.0).collect();
        assert!((pearson_correlation(&x, &y) - 1.0).abs() < 1e-12);
        let yn: Vec<f64> = x.iter().map(|v| -v).collect();
        assert!((pearson_correlation(&x, &yn) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_skips_nan_pairs() {
        let x = [1.0, 2.0, f64::NAN, 4.0];
        let y = [1.0, 2.0, 100.0, 4.0];
        assert!((pearson_correlation(&x, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_degenerate_is_zero() {
        assert_eq!(pearson_correlation(&[1.0, 1.0], &[2.0, 3.0]), 0.0);
        assert_eq!(pearson_correlation(&[1.0], &[2.0]), 0.0);
    }

    #[test]
    fn spearman_detects_monotone_nonlinear() {
        let x: Vec<f64> = (1..50).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| v.exp().min(1e300)).collect();
        let s = spearman_correlation(&x, &y);
        assert!((s - 1.0).abs() < 1e-12, "spearman on monotone data should be 1, got {s}");
        // Pearson is noticeably below 1 for the same data.
        assert!(pearson_correlation(&x, &y) < 0.9);
    }

    #[test]
    fn spearman_handles_ties() {
        let x = [1.0, 2.0, 2.0, 3.0];
        let y = [1.0, 2.0, 2.0, 3.0];
        assert!((spearman_correlation(&x, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn relief_rewards_separating_feature() {
        let n = 60;
        let (x, y) = informative_feature(n);
        let noise: Vec<f64> = (0..n).map(|i| ((i * 17 + 3) % 7) as f64).collect();
        let w = Relief::default().scores(&[x, noise], &y);
        assert!(w[0] > w[1], "relief weights: {w:?}");
        assert!(w[0] > 0.0);
    }

    #[test]
    fn relief_single_class_yields_zeros() {
        let x = vec![1.0, 2.0, 3.0];
        let y = vec![0, 0, 0];
        let w = Relief::default().scores(&[x], &y);
        assert_eq!(w, vec![0.0]);
    }

    #[test]
    fn relief_empty_features() {
        assert!(Relief::default().scores(&[], &[0, 1]).is_empty());
    }

    #[test]
    fn method_scores_dispatch() {
        let (x, y) = informative_feature(80);
        let feats = vec![x];
        for m in RelevanceMethod::all() {
            let s = m.scores(&feats, &y);
            assert_eq!(s.len(), 1);
            assert!(s[0] > 0.0, "{} should find the feature relevant", m.name());
        }
    }

    #[test]
    fn method_names() {
        assert_eq!(RelevanceMethod::Spearman.name(), "Spearman");
        assert_eq!(RelevanceMethod::all().len(), 5);
    }
}
