//! Mutual information and conditional mutual information.
//!
//! `I(X;Y)` is the **information gain** of §V-C; `I(X;Y|Z)` is the
//! conditional information gain appearing in the unified redundancy
//! framework (Eq. 1). Both are estimated from contingency counts over the
//! rows where every involved feature is present, and reported in bits.

use crate::discretize::Discretized;

const LN_2: f64 = std::f64::consts::LN_2;

/// Mutual information `I(X;Y)` in bits. Symmetric; zero for independent
/// features; never negative (up to floating-point noise, which is clamped).
pub fn mutual_information(x: &Discretized, y: &Discretized) -> f64 {
    assert_eq!(x.codes.len(), y.codes.len(), "feature length mismatch");
    let nx = x.n_bins as usize;
    let ny = y.n_bins as usize;
    if nx == 0 || ny == 0 {
        return 0.0;
    }
    let mut joint = vec![0usize; nx * ny];
    let mut mx = vec![0usize; nx];
    let mut my = vec![0usize; ny];
    let mut total = 0usize;
    for (cx, cy) in x.codes.iter().zip(&y.codes) {
        if let (Some(a), Some(b)) = (cx, cy) {
            joint[*a as usize * ny + *b as usize] += 1;
            mx[*a as usize] += 1;
            my[*b as usize] += 1;
            total += 1;
        }
    }
    if total == 0 {
        return 0.0;
    }
    let n = total as f64;
    let mut mi = 0.0;
    for a in 0..nx {
        if mx[a] == 0 {
            continue;
        }
        for b in 0..ny {
            let c = joint[a * ny + b];
            if c == 0 {
                continue;
            }
            let pxy = c as f64 / n;
            let px = mx[a] as f64 / n;
            let py = my[b] as f64 / n;
            mi += pxy * (pxy / (px * py)).ln();
        }
    }
    (mi / LN_2).max(0.0)
}

/// Miller-Madow bias-corrected mutual information.
///
/// The plug-in MI estimator is positively biased by roughly
/// `(Bx−1)(By−1) / (2N ln 2)` bits for `Bx × By` occupied cells over `N`
/// samples — enough to drown weak real dependencies and to make independent
/// features look redundant. This subtracts that first-order correction
/// (clamped at zero). The redundancy criteria use it for every term so weak
/// fresh features are not spuriously rejected.
pub fn mutual_information_corrected(x: &Discretized, y: &Discretized) -> f64 {
    assert_eq!(x.codes.len(), y.codes.len(), "feature length mismatch");
    let raw = mutual_information(x, y);
    // Occupied bins and sample count over the joint support.
    let mut bx = vec![false; x.n_bins as usize];
    let mut by = vec![false; y.n_bins as usize];
    let mut n = 0usize;
    for (cx, cy) in x.codes.iter().zip(&y.codes) {
        if let (Some(a), Some(b)) = (cx, cy) {
            bx[*a as usize] = true;
            by[*b as usize] = true;
            n += 1;
        }
    }
    if n == 0 {
        return 0.0;
    }
    let kx = bx.iter().filter(|&&v| v).count().max(1) as f64;
    let ky = by.iter().filter(|&&v| v).count().max(1) as f64;
    let bias = (kx - 1.0) * (ky - 1.0) / (2.0 * n as f64 * LN_2);
    (raw - bias).max(0.0)
}

/// Conditional mutual information `I(X;Y|Z) = Σ_z p(z)·I(X;Y|Z=z)` in bits.
pub fn conditional_mutual_information(
    x: &Discretized,
    y: &Discretized,
    z: &Discretized,
) -> f64 {
    assert_eq!(x.codes.len(), y.codes.len(), "feature length mismatch");
    assert_eq!(x.codes.len(), z.codes.len(), "feature length mismatch");
    let nz = z.n_bins as usize;
    if nz == 0 {
        return 0.0;
    }
    // Partition rows by z, then sum weighted per-stratum MI.
    let mut strata: Vec<Vec<usize>> = vec![Vec::new(); nz];
    let mut total = 0usize;
    for i in 0..x.codes.len() {
        if let (Some(_), Some(_), Some(c)) = (&x.codes[i], &y.codes[i], &z.codes[i]) {
            strata[*c as usize].push(i);
            total += 1;
        }
    }
    if total == 0 {
        return 0.0;
    }
    let mut cmi = 0.0;
    for rows in &strata {
        if rows.is_empty() {
            continue;
        }
        let sub = |d: &Discretized| Discretized {
            codes: rows.iter().map(|&i| d.codes[i]).collect(),
            n_bins: d.n_bins,
        };
        let w = rows.len() as f64 / total as f64;
        cmi += w * mutual_information(&sub(x), &sub(y));
    }
    cmi.max(0.0)
}

/// Miller-Madow-corrected conditional MI: the per-stratum estimates carry
/// the plug-in bias (once per stratum!), so each is corrected before the
/// weighted sum.
pub fn conditional_mutual_information_corrected(
    x: &Discretized,
    y: &Discretized,
    z: &Discretized,
) -> f64 {
    assert_eq!(x.codes.len(), y.codes.len(), "feature length mismatch");
    assert_eq!(x.codes.len(), z.codes.len(), "feature length mismatch");
    let nz = z.n_bins as usize;
    if nz == 0 {
        return 0.0;
    }
    let mut strata: Vec<Vec<usize>> = vec![Vec::new(); nz];
    let mut total = 0usize;
    for i in 0..x.codes.len() {
        if let (Some(_), Some(_), Some(c)) = (&x.codes[i], &y.codes[i], &z.codes[i]) {
            strata[*c as usize].push(i);
            total += 1;
        }
    }
    if total == 0 {
        return 0.0;
    }
    let mut cmi = 0.0;
    for rows in &strata {
        if rows.is_empty() {
            continue;
        }
        let sub = |d: &Discretized| Discretized {
            codes: rows.iter().map(|&i| d.codes[i]).collect(),
            n_bins: d.n_bins,
        };
        let w = rows.len() as f64 / total as f64;
        cmi += w * mutual_information_corrected(&sub(x), &sub(y));
    }
    cmi.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discretize::Discretized;
    use crate::entropy::entropy;

    fn d(codes: &[i64]) -> Discretized {
        Discretized::from_codes(codes.iter().map(|&c| Some(c)))
    }

    #[test]
    fn self_mi_equals_entropy() {
        let x = d(&[0, 1, 2, 0, 1, 2]);
        assert!((mutual_information(&x, &x) - entropy(&x)).abs() < 1e-12);
    }

    #[test]
    fn independent_features_have_zero_mi() {
        let x = d(&[0, 0, 1, 1]);
        let y = d(&[0, 1, 0, 1]);
        assert!(mutual_information(&x, &y).abs() < 1e-12);
    }

    #[test]
    fn mi_is_symmetric() {
        let x = d(&[0, 1, 1, 2, 0, 2, 1]);
        let y = d(&[1, 0, 0, 1, 1, 0, 1]);
        assert!((mutual_information(&x, &y) - mutual_information(&y, &x)).abs() < 1e-12);
    }

    #[test]
    fn deterministic_relation_gives_full_bit() {
        let x = d(&[0, 1, 0, 1]);
        let y = d(&[1, 0, 1, 0]); // y = !x
        assert!((mutual_information(&x, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn missing_rows_skipped_pairwise() {
        let x = Discretized::from_codes([Some(0), Some(1), Some(0), None]);
        let y = Discretized::from_codes([Some(0), Some(1), None, Some(1)]);
        // Only rows 0 and 1 count: perfect correlation over 2 rows.
        assert!((mutual_information(&x, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cmi_of_conditionally_independent_is_zero() {
        // x and y both copies of z ⇒ given z they are constant ⇒ CMI = 0.
        let z = d(&[0, 0, 1, 1, 0, 1]);
        let x = z.clone();
        let y = z.clone();
        assert!(conditional_mutual_information(&x, &y, &z).abs() < 1e-12);
    }

    #[test]
    fn cmi_detects_conditional_dependence() {
        // XOR: x, y independent, but given z = x ⊕ y they are dependent.
        let x = d(&[0, 0, 1, 1]);
        let y = d(&[0, 1, 0, 1]);
        let z = d(&[0, 1, 1, 0]);
        assert!(mutual_information(&x, &y).abs() < 1e-12);
        assert!((conditional_mutual_information(&x, &y, &z) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cmi_with_constant_condition_equals_mi() {
        let x = d(&[0, 1, 0, 1, 1]);
        let y = d(&[0, 1, 1, 1, 0]);
        let z = d(&[0, 0, 0, 0, 0]);
        let cmi = conditional_mutual_information(&x, &y, &z);
        assert!((cmi - mutual_information(&x, &y)).abs() < 1e-12);
    }

    #[test]
    fn empty_bins_are_safe() {
        let x = Discretized::from_codes([None, None]);
        let y = d(&[0, 1]);
        assert_eq!(mutual_information(&x, &y), 0.0);
        assert_eq!(conditional_mutual_information(&y, &y, &x), 0.0);
    }

    #[test]
    fn mi_never_negative() {
        // Noisy data shouldn't yield negative MI.
        let x = d(&[0, 1, 2, 3, 0, 2, 1, 3, 2, 0]);
        let y = d(&[1, 1, 0, 0, 1, 0, 1, 0, 1, 1]);
        assert!(mutual_information(&x, &y) >= 0.0);
    }
}
