//! Mutual information and conditional mutual information.
//!
//! `I(X;Y)` is the **information gain** of §V-C; `I(X;Y|Z)` is the
//! conditional information gain appearing in the unified redundancy
//! framework (Eq. 1). Both are estimated from contingency counts over the
//! rows where every involved feature is present, and reported in bits.

use crate::discretize::Discretized;

const LN_2: f64 = std::f64::consts::LN_2;

/// Flat contingency counts of one (sub)population: `joint[a*ny + b]` plus
/// the marginals and sample count derived from it. All counts are exact
/// integers, so every estimator computing from the same counts produces the
/// same floating-point result regardless of which code path filled them.
struct JointCounts {
    joint: Vec<u32>,
    mx: Vec<usize>,
    my: Vec<usize>,
    total: usize,
}

fn joint_counts(x: &Discretized, y: &Discretized, nx: usize, ny: usize) -> JointCounts {
    let mut joint = vec![0u32; nx * ny];
    let mut mx = vec![0usize; nx];
    let mut my = vec![0usize; ny];
    let mut total = 0usize;
    for (cx, cy) in x.codes.iter().zip(&y.codes) {
        if let (Some(a), Some(b)) = (cx, cy) {
            joint[*a as usize * ny + *b as usize] += 1;
            mx[*a as usize] += 1;
            my[*b as usize] += 1;
            total += 1;
        }
    }
    JointCounts { joint, mx, my, total }
}

/// Plug-in MI in bits from a flat contingency slice. The accumulation order
/// (x-major, skipping empty rows/cells) is the contract every caller —
/// direct MI, per-stratum CMI, the fused estimator — relies on for
/// bit-identical results.
fn mi_from_counts(joint: &[u32], mx: &[usize], my: &[usize], total: usize, ny: usize) -> f64 {
    let n = total as f64;
    let mut mi = 0.0;
    for (a, &ma) in mx.iter().enumerate() {
        if ma == 0 {
            continue;
        }
        for b in 0..ny {
            let c = joint[a * ny + b];
            if c == 0 {
                continue;
            }
            let pxy = c as f64 / n;
            let px = ma as f64 / n;
            let py = my[b] as f64 / n;
            mi += pxy * (pxy / (px * py)).ln();
        }
    }
    (mi / LN_2).max(0.0)
}

/// Miller-Madow first-order bias for a contingency slice: occupied-bin
/// counts come straight from the marginals (a bin is occupied iff its
/// marginal is non-zero over the same rows).
fn miller_madow_bias(mx: &[usize], my: &[usize], total: usize) -> f64 {
    let kx = mx.iter().filter(|&&v| v > 0).count().max(1) as f64;
    let ky = my.iter().filter(|&&v| v > 0).count().max(1) as f64;
    (kx - 1.0) * (ky - 1.0) / (2.0 * total as f64 * LN_2)
}

/// Mutual information `I(X;Y)` in bits. Symmetric; zero for independent
/// features; never negative (up to floating-point noise, which is clamped).
pub fn mutual_information(x: &Discretized, y: &Discretized) -> f64 {
    assert_eq!(x.codes.len(), y.codes.len(), "feature length mismatch");
    let nx = x.n_bins as usize;
    let ny = y.n_bins as usize;
    if nx == 0 || ny == 0 {
        return 0.0;
    }
    let c = joint_counts(x, y, nx, ny);
    if c.total == 0 {
        return 0.0;
    }
    mi_from_counts(&c.joint, &c.mx, &c.my, c.total, ny)
}

/// Miller-Madow bias-corrected mutual information.
///
/// The plug-in MI estimator is positively biased by roughly
/// `(Bx−1)(By−1) / (2N ln 2)` bits for `Bx × By` occupied cells over `N`
/// samples — enough to drown weak real dependencies and to make independent
/// features look redundant. This subtracts that first-order correction
/// (clamped at zero). The redundancy criteria use it for every term so weak
/// fresh features are not spuriously rejected.
///
/// One contingency pass serves both the raw estimate and the occupied-bin
/// counts (previously a second full scan of the rows).
pub fn mutual_information_corrected(x: &Discretized, y: &Discretized) -> f64 {
    assert_eq!(x.codes.len(), y.codes.len(), "feature length mismatch");
    let nx = x.n_bins as usize;
    let ny = y.n_bins as usize;
    if nx == 0 || ny == 0 {
        return 0.0;
    }
    let c = joint_counts(x, y, nx, ny);
    if c.total == 0 {
        return 0.0;
    }
    let raw = mi_from_counts(&c.joint, &c.mx, &c.my, c.total, ny);
    (raw - miller_madow_bias(&c.mx, &c.my, c.total)).max(0.0)
}

/// Cell budget for the flat `nz × nx × ny` conditional contingency array
/// (16 MiB of `u32`s). Within budget the whole CMI is one row pass plus
/// cheap per-stratum slice loops; beyond it the gather-per-stratum fallback
/// keeps memory bounded. Both produce identical counts, hence identical
/// floats.
const FLAT_CMI_MAX_CELLS: usize = 1 << 22;

/// Conditional mutual information `I(X;Y|Z) = Σ_z p(z)·I(X;Y|Z=z)` in bits.
pub fn conditional_mutual_information(
    x: &Discretized,
    y: &Discretized,
    z: &Discretized,
) -> f64 {
    cmi_impl(x, y, z, false)
}

/// Miller-Madow-corrected conditional MI: the per-stratum estimates carry
/// the plug-in bias (once per stratum!), so each is corrected before the
/// weighted sum.
pub fn conditional_mutual_information_corrected(
    x: &Discretized,
    y: &Discretized,
    z: &Discretized,
) -> f64 {
    cmi_impl(x, y, z, true)
}

fn cmi_impl(x: &Discretized, y: &Discretized, z: &Discretized, corrected: bool) -> f64 {
    assert_eq!(x.codes.len(), y.codes.len(), "feature length mismatch");
    assert_eq!(x.codes.len(), z.codes.len(), "feature length mismatch");
    let nx = x.n_bins as usize;
    let ny = y.n_bins as usize;
    let nz = z.n_bins as usize;
    if nx == 0 || ny == 0 || nz == 0 {
        return 0.0;
    }
    let fits_flat = nx
        .checked_mul(ny)
        .and_then(|v| v.checked_mul(nz))
        .is_some_and(|cells| cells <= FLAT_CMI_MAX_CELLS);
    if !fits_flat {
        return cmi_gather(x, y, z, corrected);
    }

    // One pass fills the full 3-way contingency; each z-stratum is then a
    // contiguous slice — no per-stratum row gathering or re-counting.
    let mut counts = vec![0u32; nz * nx * ny];
    let mut z_totals = vec![0usize; nz];
    let mut total = 0usize;
    for i in 0..x.codes.len() {
        if let (Some(a), Some(b), Some(c)) = (x.codes[i], y.codes[i], z.codes[i]) {
            counts[(c as usize * nx + a as usize) * ny + b as usize] += 1;
            z_totals[c as usize] += 1;
            total += 1;
        }
    }
    if total == 0 {
        return 0.0;
    }
    let mut mx = vec![0usize; nx];
    let mut my = vec![0usize; ny];
    let mut cmi = 0.0;
    for (zc, &n_z) in z_totals.iter().enumerate() {
        if n_z == 0 {
            continue;
        }
        let slice = &counts[zc * nx * ny..(zc + 1) * nx * ny];
        mx.iter_mut().for_each(|v| *v = 0);
        my.iter_mut().for_each(|v| *v = 0);
        for a in 0..nx {
            for b in 0..ny {
                let c = slice[a * ny + b] as usize;
                mx[a] += c;
                my[b] += c;
            }
        }
        let mut mi_z = mi_from_counts(slice, &mx, &my, n_z, ny);
        if corrected {
            mi_z = (mi_z - miller_madow_bias(&mx, &my, n_z)).max(0.0);
        }
        cmi += (n_z as f64 / total as f64) * mi_z;
    }
    cmi.max(0.0)
}

/// Fallback CMI for pathological bin counts: partition rows by z and score
/// each stratum from gathered sub-codes (the original implementation).
fn cmi_gather(x: &Discretized, y: &Discretized, z: &Discretized, corrected: bool) -> f64 {
    let nz = z.n_bins as usize;
    let mut strata: Vec<Vec<usize>> = vec![Vec::new(); nz];
    let mut total = 0usize;
    for i in 0..x.codes.len() {
        if let (Some(_), Some(_), Some(c)) = (&x.codes[i], &y.codes[i], &z.codes[i]) {
            strata[*c as usize].push(i);
            total += 1;
        }
    }
    if total == 0 {
        return 0.0;
    }
    let mut cmi = 0.0;
    for rows in &strata {
        if rows.is_empty() {
            continue;
        }
        let sub = |d: &Discretized| Discretized {
            codes: rows.iter().map(|&i| d.codes[i]).collect(),
            n_bins: d.n_bins,
        };
        let w = rows.len() as f64 / total as f64;
        let mi_z = if corrected {
            mutual_information_corrected(&sub(x), &sub(y))
        } else {
            mutual_information(&sub(x), &sub(y))
        };
        cmi += w * mi_z;
    }
    cmi.max(0.0)
}

/// Fused `(I(X;Y), I(X;Y|Z))` — the pair every conditional redundancy
/// criterion (CIFE, JMI, CMIM) evaluates per already-selected feature.
///
/// One 3-way contingency pass replaces the two separate row scans: the MI
/// marginal joint is recovered as the z-sum of the conditional counts plus
/// the rows where x and y are present but z is missing, so both results are
/// **bit-identical** to calling [`mutual_information`] and
/// [`conditional_mutual_information`] separately (the same integer counts
/// feed the same accumulation loops).
pub fn mi_and_cmi(x: &Discretized, y: &Discretized, z: &Discretized) -> (f64, f64) {
    assert_eq!(x.codes.len(), y.codes.len(), "feature length mismatch");
    assert_eq!(x.codes.len(), z.codes.len(), "feature length mismatch");
    let nx = x.n_bins as usize;
    let ny = y.n_bins as usize;
    let nz = z.n_bins as usize;
    if nx == 0 || ny == 0 {
        return (0.0, 0.0);
    }
    let fits_flat = nz > 0
        && nx
            .checked_mul(ny)
            .and_then(|v| v.checked_mul(nz))
            .is_some_and(|cells| cells <= FLAT_CMI_MAX_CELLS);
    if !fits_flat {
        return (
            mutual_information(x, y),
            conditional_mutual_information(x, y, z),
        );
    }

    let mut counts = vec![0u32; nz * nx * ny];
    // Rows with x,y present but z missing: they count toward MI, not CMI.
    let mut extra = vec![0u32; nx * ny];
    let mut z_totals = vec![0usize; nz];
    let mut cmi_total = 0usize;
    let mut mi_total = 0usize;
    for i in 0..x.codes.len() {
        if let (Some(a), Some(b)) = (x.codes[i], y.codes[i]) {
            mi_total += 1;
            match z.codes[i] {
                Some(c) => {
                    counts[(c as usize * nx + a as usize) * ny + b as usize] += 1;
                    z_totals[c as usize] += 1;
                    cmi_total += 1;
                }
                None => extra[a as usize * ny + b as usize] += 1,
            }
        }
    }
    if mi_total == 0 {
        return (0.0, 0.0);
    }

    // MI over all xy-present rows: joint = Σ_z conditional + z-missing.
    let mut joint = extra;
    for zc in 0..nz {
        let slice = &counts[zc * nx * ny..(zc + 1) * nx * ny];
        for (j, &c) in joint.iter_mut().zip(slice) {
            *j += c;
        }
    }
    let mut mx = vec![0usize; nx];
    let mut my = vec![0usize; ny];
    for a in 0..nx {
        for b in 0..ny {
            let c = joint[a * ny + b] as usize;
            mx[a] += c;
            my[b] += c;
        }
    }
    let mi = mi_from_counts(&joint, &mx, &my, mi_total, ny);

    if cmi_total == 0 {
        return (mi, 0.0);
    }
    let mut cmi = 0.0;
    for (zc, &n_z) in z_totals.iter().enumerate() {
        if n_z == 0 {
            continue;
        }
        let slice = &counts[zc * nx * ny..(zc + 1) * nx * ny];
        mx.iter_mut().for_each(|v| *v = 0);
        my.iter_mut().for_each(|v| *v = 0);
        for a in 0..nx {
            for b in 0..ny {
                let c = slice[a * ny + b] as usize;
                mx[a] += c;
                my[b] += c;
            }
        }
        cmi += (n_z as f64 / cmi_total as f64) * mi_from_counts(slice, &mx, &my, n_z, ny);
    }
    (mi, cmi.max(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discretize::Discretized;
    use crate::entropy::entropy;

    fn d(codes: &[i64]) -> Discretized {
        Discretized::from_codes(codes.iter().map(|&c| Some(c)))
    }

    #[test]
    fn self_mi_equals_entropy() {
        let x = d(&[0, 1, 2, 0, 1, 2]);
        assert!((mutual_information(&x, &x) - entropy(&x)).abs() < 1e-12);
    }

    #[test]
    fn independent_features_have_zero_mi() {
        let x = d(&[0, 0, 1, 1]);
        let y = d(&[0, 1, 0, 1]);
        assert!(mutual_information(&x, &y).abs() < 1e-12);
    }

    #[test]
    fn mi_is_symmetric() {
        let x = d(&[0, 1, 1, 2, 0, 2, 1]);
        let y = d(&[1, 0, 0, 1, 1, 0, 1]);
        assert!((mutual_information(&x, &y) - mutual_information(&y, &x)).abs() < 1e-12);
    }

    #[test]
    fn deterministic_relation_gives_full_bit() {
        let x = d(&[0, 1, 0, 1]);
        let y = d(&[1, 0, 1, 0]); // y = !x
        assert!((mutual_information(&x, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn missing_rows_skipped_pairwise() {
        let x = Discretized::from_codes([Some(0), Some(1), Some(0), None]);
        let y = Discretized::from_codes([Some(0), Some(1), None, Some(1)]);
        // Only rows 0 and 1 count: perfect correlation over 2 rows.
        assert!((mutual_information(&x, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cmi_of_conditionally_independent_is_zero() {
        // x and y both copies of z ⇒ given z they are constant ⇒ CMI = 0.
        let z = d(&[0, 0, 1, 1, 0, 1]);
        let x = z.clone();
        let y = z.clone();
        assert!(conditional_mutual_information(&x, &y, &z).abs() < 1e-12);
    }

    #[test]
    fn cmi_detects_conditional_dependence() {
        // XOR: x, y independent, but given z = x ⊕ y they are dependent.
        let x = d(&[0, 0, 1, 1]);
        let y = d(&[0, 1, 0, 1]);
        let z = d(&[0, 1, 1, 0]);
        assert!(mutual_information(&x, &y).abs() < 1e-12);
        assert!((conditional_mutual_information(&x, &y, &z) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cmi_with_constant_condition_equals_mi() {
        let x = d(&[0, 1, 0, 1, 1]);
        let y = d(&[0, 1, 1, 1, 0]);
        let z = d(&[0, 0, 0, 0, 0]);
        let cmi = conditional_mutual_information(&x, &y, &z);
        assert!((cmi - mutual_information(&x, &y)).abs() < 1e-12);
    }

    #[test]
    fn empty_bins_are_safe() {
        let x = Discretized::from_codes([None, None]);
        let y = d(&[0, 1]);
        assert_eq!(mutual_information(&x, &y), 0.0);
        assert_eq!(conditional_mutual_information(&y, &y, &x), 0.0);
    }

    #[test]
    fn mi_never_negative() {
        // Noisy data shouldn't yield negative MI.
        let x = d(&[0, 1, 2, 3, 0, 2, 1, 3, 2, 0]);
        let y = d(&[1, 1, 0, 0, 1, 0, 1, 0, 1, 1]);
        assert!(mutual_information(&x, &y) >= 0.0);
    }

    /// Deterministic pseudo-random Discretized with missing values sprinkled
    /// in — exercises the pairwise-present bookkeeping of every estimator.
    fn noisy(seed: u64, n: usize, bins: i64) -> Discretized {
        let mut s = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        Discretized::from_codes((0..n).map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            if s.is_multiple_of(11) {
                None
            } else {
                Some((s % bins as u64) as i64)
            }
        }))
    }

    #[test]
    fn fused_mi_and_cmi_matches_separate_calls_bitwise() {
        for seed in 1..=8u64 {
            let x = noisy(seed, 97, 6);
            let y = noisy(seed + 100, 97, 5);
            let z = noisy(seed + 200, 97, 4);
            let (mi, cmi) = mi_and_cmi(&x, &y, &z);
            assert_eq!(mi.to_bits(), mutual_information(&x, &y).to_bits());
            assert_eq!(
                cmi.to_bits(),
                conditional_mutual_information(&x, &y, &z).to_bits()
            );
        }
    }

    #[test]
    fn fused_handles_degenerate_condition() {
        let x = noisy(3, 50, 4);
        let y = noisy(7, 50, 4);
        // z entirely missing: MI must still match, CMI is zero.
        let z = Discretized::from_codes((0..50).map(|_| None));
        let (mi, cmi) = mi_and_cmi(&x, &y, &z);
        assert_eq!(mi.to_bits(), mutual_information(&x, &y).to_bits());
        assert_eq!(cmi, 0.0);
    }

    #[test]
    fn flat_cmi_matches_gather_fallback_bitwise() {
        for seed in 1..=6u64 {
            let x = noisy(seed, 120, 7);
            let y = noisy(seed + 50, 120, 6);
            let z = noisy(seed + 90, 120, 3);
            for corrected in [false, true] {
                let flat = cmi_impl(&x, &y, &z, corrected);
                let gather = cmi_gather(&x, &y, &z, corrected);
                assert_eq!(flat.to_bits(), gather.to_bits());
            }
        }
    }
}
