//! Feature-subset selection building blocks used by Algorithm 1.
//!
//! * [`select_k_best`] — the *select-κ-best* heuristic (§VI): sort features
//!   by a relevance score and keep the top κ with a strictly positive score.
//! * [`select_non_redundant`] — greedy forward pass applying a
//!   [`RedundancyScorer`]: candidates are visited in descending relevance;
//!   a candidate is kept iff its `J` score against the selected-so-far set
//!   is positive, and once kept it joins the conditioning set.

use autofeat_obs as obs;

use crate::discretize::Discretized;
use crate::redundancy::RedundancyScorer;
use crate::relevance::RelevanceMethod;

/// A feature chosen by a selection step, with its score.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectedFeature {
    /// Index into the caller's feature list.
    pub index: usize,
    /// The relevance or redundancy (J) score that justified selection.
    pub score: f64,
}

/// Relevance analysis (Algorithm 1, line 16): score all features with
/// `method`, keep the top-κ with score > `min_score` (default callers pass
/// 0.0), sorted by descending score.
pub fn select_k_best(
    features: &[Vec<f64>],
    labels: &[i64],
    method: RelevanceMethod,
    kappa: usize,
    min_score: f64,
) -> Vec<SelectedFeature> {
    let _span = obs::span("relevance");
    obs::add("metrics.features_scored", features.len() as u64);
    let scores = method.scores(features, labels);
    let mut ranked: Vec<SelectedFeature> = scores
        .into_iter()
        .enumerate()
        .filter(|(_, s)| s.is_finite() && *s > min_score)
        .map(|(index, score)| SelectedFeature { index, score })
        .collect();
    ranked.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .expect("finite scores")
            .then(a.index.cmp(&b.index))
    });
    ranked.truncate(kappa);
    ranked
}

/// Redundancy analysis (Algorithm 1, line 17): greedily keep candidates
/// whose `J` score against `already_selected ∪ kept-so-far` is positive.
///
/// `candidates` are `(index, codes)` pairs, visited in the given order
/// (callers pass them in descending relevance); `already_selected` holds the
/// discretized codes of `R_sel`, the features selected on previous pipeline
/// steps. Returns the kept features with their `J` scores.
pub fn select_non_redundant(
    candidates: &[(usize, &Discretized)],
    already_selected: &[&Discretized],
    labels: &Discretized,
    scorer: &RedundancyScorer,
) -> Vec<SelectedFeature> {
    let _span = obs::span("redundancy");
    obs::add("metrics.redundancy_candidates", candidates.len() as u64);
    let mut kept: Vec<SelectedFeature> = Vec::new();
    let mut conditioning: Vec<&Discretized> = already_selected.to_vec();
    for &(index, codes) in candidates {
        let j = scorer.score_codes(codes, &conditioning, labels);
        if j > 0.0 {
            kept.push(SelectedFeature { index, score: j });
            conditioning.push(codes);
        }
    }
    obs::add("metrics.redundancy_kept", kept.len() as u64);
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discretize::discretize_equal_frequency;
    use crate::redundancy::RedundancyMethod;

    fn fixture() -> (Vec<Vec<f64>>, Vec<i64>) {
        let n = 200;
        let informative: Vec<f64> = (0..n).map(|i| (i % 10) as f64).collect();
        let copy = informative.clone();
        let noise: Vec<f64> = (0..n).map(|i| ((i * 7 + 5) % 13) as f64).collect();
        let weak: Vec<f64> = (0..n)
            .map(|i| (i % 10) as f64 + ((i * 3) % 5) as f64)
            .collect();
        let y: Vec<i64> = informative.iter().map(|&v| i64::from(v >= 5.0)).collect();
        (vec![informative, copy, noise, weak], y)
    }

    #[test]
    fn k_best_ranks_informative_first() {
        let (feats, y) = fixture();
        let sel = select_k_best(&feats, &y, RelevanceMethod::Spearman, 2, 0.0);
        assert_eq!(sel.len(), 2);
        // The informative feature and its copy tie at the top.
        assert!(sel.iter().all(|s| s.index <= 1));
        assert!(sel[0].score >= sel[1].score);
    }

    #[test]
    fn k_best_truncates_to_kappa() {
        let (feats, y) = fixture();
        let sel = select_k_best(&feats, &y, RelevanceMethod::Pearson, 1, 0.0);
        assert_eq!(sel.len(), 1);
    }

    #[test]
    fn k_best_excludes_nonpositive_scores() {
        let y: Vec<i64> = (0..100).map(|i| i % 2).collect();
        let constant = vec![5.0f64; 100];
        let sel = select_k_best(&[constant], &y, RelevanceMethod::Spearman, 10, 0.0);
        assert!(sel.is_empty());
    }

    #[test]
    fn k_best_deterministic_tie_break_by_index() {
        let (feats, y) = fixture();
        let sel = select_k_best(&feats, &y, RelevanceMethod::Spearman, 4, 0.0);
        // feature 0 and its copy (1) have identical scores; 0 must come first
        let pos0 = sel.iter().position(|s| s.index == 0).unwrap();
        let pos1 = sel.iter().position(|s| s.index == 1).unwrap();
        assert!(pos0 < pos1);
    }

    #[test]
    fn non_redundant_drops_duplicate() {
        let (feats, y) = fixture();
        let codes: Vec<_> = feats
            .iter()
            .map(|f| discretize_equal_frequency(f, 10))
            .collect();
        let ycodes = Discretized::from_codes(y.iter().map(|&l| Some(l)));
        let scorer = RedundancyScorer::new(RedundancyMethod::Mrmr);
        let cands: Vec<(usize, &Discretized)> =
            vec![(0, &codes[0]), (1, &codes[1])];
        let kept = select_non_redundant(&cands, &[], &ycodes, &scorer);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].index, 0);
    }

    #[test]
    fn non_redundant_respects_prior_selection() {
        let (feats, y) = fixture();
        let codes: Vec<_> = feats
            .iter()
            .map(|f| discretize_equal_frequency(f, 10))
            .collect();
        let ycodes = Discretized::from_codes(y.iter().map(|&l| Some(l)));
        let scorer = RedundancyScorer::new(RedundancyMethod::Mrmr);
        // Candidate 1 (the copy) against R_sel = {feature 0} must be dropped.
        let cands: Vec<(usize, &Discretized)> = vec![(1, &codes[1])];
        let kept = select_non_redundant(&cands, &[&codes[0]], &ycodes, &scorer);
        assert!(kept.is_empty());
    }

    #[test]
    fn non_redundant_keeps_fresh_information() {
        let (feats, y) = fixture();
        let codes: Vec<_> = feats
            .iter()
            .map(|f| discretize_equal_frequency(f, 10))
            .collect();
        let ycodes = Discretized::from_codes(y.iter().map(|&l| Some(l)));
        let scorer = RedundancyScorer::new(RedundancyMethod::Mrmr);
        let cands: Vec<(usize, &Discretized)> = vec![(0, &codes[0])];
        let kept = select_non_redundant(&cands, &[], &ycodes, &scorer);
        assert_eq!(kept.len(), 1);
        assert!(kept[0].score > 0.0);
    }

    #[test]
    fn empty_candidates_empty_result() {
        let ycodes = Discretized::from_codes([Some(0), Some(1)]);
        let scorer = RedundancyScorer::new(RedundancyMethod::Mrmr);
        assert!(select_non_redundant(&[], &[], &ycodes, &scorer).is_empty());
    }
}
