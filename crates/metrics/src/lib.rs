//! # autofeat-metrics
//!
//! Information-theoretic and statistical feature-scoring library — §V of
//! "AutoFeat: Transitive Feature Discovery over Join Paths" (ICDE 2024).
//!
//! Provides:
//!
//! * discretization of continuous features for entropy estimation
//!   ([`discretize`]);
//! * entropy, mutual information, and conditional mutual information over
//!   discrete codes ([`mod@entropy`], [`mi`]);
//! * the five **relevance** measures evaluated in §V-C — Information Gain,
//!   Symmetrical Uncertainty, Pearson, Spearman, and Relief
//!   ([`relevance`]);
//! * the five **redundancy** criteria of §V-D, all instances of the unified
//!   conditional-likelihood-maximisation framework (Eq. 1/2) — MIFS, MRMR,
//!   CIFE, JMI, and CMIM ([`redundancy`]);
//! * the *select-κ-best* heuristic and greedy non-redundant subset selection
//!   used by Algorithm 1 ([`selection`]).
//!
//! The paper's empirical study picks **Spearman** for relevance and **MRMR**
//! for redundancy; both are exposed here alongside the alternatives so the
//! ablation experiments (Fig. 9) can swap them.

pub mod discretize;
pub mod entropy;
pub mod fcbf;
pub mod mi;
pub mod ranks;
pub mod redundancy;
pub mod relevance;
pub mod selection;
pub mod streaming;

pub use discretize::{discretize_equal_frequency, discretize_equal_width, Discretized};
pub use fcbf::fcbf;
pub use entropy::{conditional_entropy, entropy, joint_entropy};
pub use mi::{conditional_mutual_information, mutual_information};
pub use redundancy::{RedundancyMethod, RedundancyScorer};
pub use relevance::{
    InformationGain, Pearson, Relevance, RelevanceMethod, Relief, Spearman,
    SymmetricalUncertainty,
};
pub use streaming::{BatchOutcome, StreamingSelector};
pub use selection::{select_k_best, select_non_redundant, SelectedFeature};
