//! Discretization of continuous features for entropy estimation.
//!
//! Mutual-information estimators operate on discrete codes. Continuous
//! features are binned with equal-frequency binning by default (robust to
//! skew); equal-width binning is available as an alternative. Missing values
//! (`NaN`) map to `None` and are skipped pairwise by the estimators.

/// A discretized feature: per-row bin codes (None = missing) and the number
/// of bins actually used.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Discretized {
    /// Per-row bin code.
    pub codes: Vec<Option<u32>>,
    /// Number of distinct bins (codes are in `0..n_bins`).
    pub n_bins: u32,
}

impl Discretized {
    /// Build directly from integer-like codes (used for already-discrete
    /// features such as class labels). Codes are compacted to `0..k`.
    pub fn from_codes<I: IntoIterator<Item = Option<i64>>>(iter: I) -> Self {
        let raw: Vec<Option<i64>> = iter.into_iter().collect();
        let mut distinct: Vec<i64> = raw.iter().flatten().copied().collect();
        distinct.sort_unstable();
        distinct.dedup();
        let codes = raw
            .iter()
            .map(|v| {
                v.map(|x| distinct.binary_search(&x).expect("value present") as u32)
            })
            .collect();
        Discretized { codes, n_bins: distinct.len() as u32 }
    }

    /// Number of non-missing entries.
    pub fn n_present(&self) -> usize {
        self.codes.iter().filter(|c| c.is_some()).count()
    }
}

/// The distinct finite values, sorted ascending — or `None` as soon as more
/// than `cap` distinct values have been seen. The early exit is the point:
/// high-cardinality columns (the common case for continuous features) bail
/// after scanning at most `cap + 1` distinct values instead of paying a full
/// sort + dedup of the column, and the quantile path then performs the only
/// sort. `-0.0` is normalized to `0.0` before hashing, matching the numeric
/// comparison semantics of the sorted-dedup this replaces.
fn distinct_capped(values: &[f64], cap: usize) -> Option<Vec<f64>> {
    let mut seen: std::collections::HashSet<u64> =
        std::collections::HashSet::with_capacity(cap.saturating_add(1));
    for &x in values {
        if !x.is_finite() {
            continue;
        }
        let bits = if x == 0.0 { 0.0f64 } else { x }.to_bits();
        if seen.insert(bits) && seen.len() > cap {
            return None;
        }
    }
    let mut v: Vec<f64> = seen.into_iter().map(f64::from_bits).collect();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    Some(v)
}

/// Equal-frequency (quantile) binning into at most `n_bins` bins.
///
/// When the feature has ≤ `n_bins` distinct values it is treated as already
/// discrete and each value gets its own bin. Identical values always share a
/// bin (boundaries never split ties).
pub fn discretize_equal_frequency(values: &[f64], n_bins: u32) -> Discretized {
    assert!(n_bins >= 1, "n_bins must be >= 1");
    let distinct = match distinct_capped(values, n_bins as usize) {
        None => None, // more distinct values than bins: quantile path
        Some(d) if d.is_empty() => {
            return Discretized { codes: vec![None; values.len()], n_bins: 0 };
        }
        Some(d) => Some(d),
    };
    if let Some(distinct) = distinct {
        // Already discrete: direct value → bin mapping.
        let codes = values
            .iter()
            .map(|&x| {
                if x.is_finite() {
                    Some(distinct.partition_point(|&d| d < x) as u32)
                } else {
                    None
                }
            })
            .collect();
        return Discretized { codes, n_bins: distinct.len() as u32 };
    }

    // Quantile boundaries over the sorted present values.
    let mut sorted: Vec<f64> = values.iter().copied().filter(|x| x.is_finite()).collect();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let n = sorted.len();
    let mut boundaries: Vec<f64> = Vec::with_capacity(n_bins as usize - 1);
    for b in 1..n_bins {
        let q = (b as f64 / n_bins as f64 * n as f64) as usize;
        let q = q.clamp(1, n - 1);
        boundaries.push(sorted[q]);
    }
    boundaries.dedup_by(|a, b| a == b);

    let codes: Vec<Option<u32>> = values
        .iter()
        .map(|&x| {
            if x.is_finite() {
                Some(boundaries.partition_point(|&bnd| bnd <= x) as u32)
            } else {
                None
            }
        })
        .collect();
    let n_used = codes.iter().flatten().copied().max().map_or(0, |m| m + 1);
    Discretized { codes, n_bins: n_used }
}

/// Equal-width binning into `n_bins` bins over `[min, max]`.
pub fn discretize_equal_width(values: &[f64], n_bins: u32) -> Discretized {
    assert!(n_bins >= 1, "n_bins must be >= 1");
    let present: Vec<f64> = values.iter().copied().filter(|x| x.is_finite()).collect();
    if present.is_empty() {
        return Discretized { codes: vec![None; values.len()], n_bins: 0 };
    }
    let min = present.iter().copied().fold(f64::INFINITY, f64::min);
    let max = present.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if min == max {
        return Discretized {
            codes: values
                .iter()
                .map(|x| if x.is_finite() { Some(0) } else { None })
                .collect(),
            n_bins: 1,
        };
    }
    let width = (max - min) / n_bins as f64;
    let codes: Vec<Option<u32>> = values
        .iter()
        .map(|&x| {
            if x.is_finite() {
                Some((((x - min) / width) as u32).min(n_bins - 1))
            } else {
                None
            }
        })
        .collect();
    Discretized { codes, n_bins }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discrete_passthrough() {
        let d = discretize_equal_frequency(&[0.0, 1.0, 1.0, 2.0], 10);
        assert_eq!(d.n_bins, 3);
        assert_eq!(d.codes, vec![Some(0), Some(1), Some(1), Some(2)]);
    }

    #[test]
    fn nan_maps_to_none() {
        let d = discretize_equal_frequency(&[1.0, f64::NAN, 2.0], 4);
        assert_eq!(d.codes[1], None);
        assert_eq!(d.n_present(), 2);
    }

    #[test]
    fn all_nan_yields_zero_bins() {
        let d = discretize_equal_frequency(&[f64::NAN, f64::NAN], 4);
        assert_eq!(d.n_bins, 0);
        assert!(d.codes.iter().all(Option::is_none));
    }

    #[test]
    fn distinct_capped_early_exits_over_cap() {
        // More than `cap` distinct values: the helper must bail with None
        // (previously the cap was ignored and the full column was sorted).
        let many: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        assert_eq!(distinct_capped(&many, 10), None);
        // At or below the cap: the sorted distinct values come back, with
        // duplicates collapsed and non-finite values skipped.
        let few = [3.0, 1.0, f64::NAN, 3.0, -0.0, 0.0, f64::INFINITY, 2.0];
        assert_eq!(distinct_capped(&few, 10), Some(vec![0.0, 1.0, 2.0, 3.0]));
        // Exactly cap distinct values does not trigger the exit.
        assert_eq!(distinct_capped(&[5.0, 4.0], 2), Some(vec![4.0, 5.0]));
        assert_eq!(distinct_capped(&[5.0, 4.0, 3.0], 2), None);
        assert_eq!(distinct_capped(&[f64::NAN], 2), Some(vec![]));
    }

    #[test]
    fn capped_and_quantile_paths_agree_at_the_boundary() {
        // 5 distinct values: discrete path with 5+ bins, quantile with 4.
        let values = [4.0, 0.0, 2.0, 1.0, 3.0, 2.0, 0.0];
        let discrete = discretize_equal_frequency(&values, 5);
        assert_eq!(discrete.n_bins, 5);
        let quantile = discretize_equal_frequency(&values, 4);
        assert!(quantile.n_bins <= 4);
        // Both must keep equal values in one bin and stay monotone.
        for d in [&discrete, &quantile] {
            assert_eq!(d.codes[2], d.codes[5]);
            assert_eq!(d.codes[1], d.codes[6]);
        }
    }

    #[test]
    fn equal_frequency_balances_counts() {
        let values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let d = discretize_equal_frequency(&values, 4);
        assert_eq!(d.n_bins, 4);
        let mut counts = [0usize; 4];
        for c in d.codes.iter().flatten() {
            counts[*c as usize] += 1;
        }
        for &c in &counts {
            assert_eq!(c, 25);
        }
    }

    #[test]
    fn ties_never_split_across_bins() {
        // 90 copies of 1.0 then 10 distinct larger values; with 4 bins all
        // the 1.0s must land in a single bin.
        let mut values = vec![1.0f64; 90];
        values.extend((0..10).map(|i| 2.0 + i as f64));
        // distinct = 11 > 4 bins, so quantile path is taken
        let d = discretize_equal_frequency(&values, 4);
        let first = d.codes[0];
        assert!(d.codes[..90].iter().all(|&c| c == first));
    }

    #[test]
    fn skewed_data_still_monotone() {
        let values: Vec<f64> = (0..50).map(|i| (i as f64).exp().min(1e12)).collect();
        let d = discretize_equal_frequency(&values, 5);
        // Codes must be monotone non-decreasing over sorted input.
        let codes: Vec<u32> = d.codes.iter().map(|c| c.unwrap()).collect();
        assert!(codes.windows(2).all(|w| w[0] <= w[1]));
        assert!(d.n_bins >= 2);
    }

    #[test]
    fn equal_width_boundaries() {
        let d = discretize_equal_width(&[0.0, 2.5, 5.0, 7.5, 10.0], 2);
        assert_eq!(d.codes, vec![Some(0), Some(0), Some(1), Some(1), Some(1)]);
    }

    #[test]
    fn equal_width_constant_column() {
        let d = discretize_equal_width(&[3.0, 3.0, f64::NAN], 4);
        assert_eq!(d.n_bins, 1);
        assert_eq!(d.codes, vec![Some(0), Some(0), None]);
    }

    #[test]
    fn from_codes_compacts() {
        let d = Discretized::from_codes([Some(10), Some(-5), None, Some(10)]);
        assert_eq!(d.n_bins, 2);
        assert_eq!(d.codes, vec![Some(1), Some(0), None, Some(1)]);
    }

    #[test]
    fn max_value_in_last_bin() {
        let values: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let d = discretize_equal_width(&values, 3);
        assert_eq!(d.codes[9], Some(2));
    }
}
