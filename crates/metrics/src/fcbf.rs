//! FCBF — Fast Correlation-Based Filter (Yu & Liu, ICML 2003; the paper's
//! reference \[43\] and the origin of the Symmetrical Uncertainty measure).
//!
//! FCBF couples relevance and redundancy through a single measure (SU):
//!
//! 1. keep features with `SU(f, Y) ≥ δ`, ordered by descending SU;
//! 2. walking that order, a kept feature `f_p` removes every remaining
//!    `f_q` whose correlation with `f_p` dominates its correlation with
//!    the label (`SU(f_q, f_p) ≥ SU(f_q, Y)`) — `f_p` is an *approximate
//!    Markov blanket* for `f_q`.
//!
//! Offered as an alternative one-shot selector alongside the paper's
//! select-κ-best + MRMR pipeline.

use crate::discretize::{discretize_equal_frequency, Discretized};
use crate::entropy::entropy;
use crate::mi::mutual_information;
use crate::relevance::DEFAULT_BINS;
use crate::selection::SelectedFeature;

/// Symmetrical uncertainty of two pre-discretized variables.
fn su(a: &Discretized, b: &Discretized) -> f64 {
    let ha = entropy(a);
    let hb = entropy(b);
    if ha + hb == 0.0 {
        return 0.0;
    }
    (2.0 * mutual_information(a, b) / (ha + hb)).clamp(0.0, 1.0)
}

/// Run FCBF over continuous features (binned internally). Returns the
/// selected features with their `SU(f, Y)` scores, in descending order.
pub fn fcbf(features: &[Vec<f64>], labels: &[i64], delta: f64) -> Vec<SelectedFeature> {
    let y = Discretized::from_codes(labels.iter().map(|&l| Some(l)));
    let codes: Vec<Discretized> = features
        .iter()
        .map(|f| discretize_equal_frequency(f, DEFAULT_BINS))
        .collect();
    // Step 1: relevance by SU(f, Y).
    let mut ranked: Vec<(usize, f64)> = codes
        .iter()
        .enumerate()
        .map(|(i, c)| (i, su(c, &y)))
        .filter(|&(_, s)| s >= delta && s > 0.0)
        .collect();
    ranked.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .expect("finite SU")
            .then_with(|| a.0.cmp(&b.0))
    });
    // Step 2: redundancy by approximate Markov blankets.
    let mut removed = vec![false; ranked.len()];
    for p in 0..ranked.len() {
        if removed[p] {
            continue;
        }
        let (pi, _) = ranked[p];
        for q in (p + 1)..ranked.len() {
            if removed[q] {
                continue;
            }
            let (qi, su_qy) = ranked[q];
            if su(&codes[qi], &codes[pi]) >= su_qy {
                removed[q] = true;
            }
        }
    }
    ranked
        .into_iter()
        .zip(removed)
        .filter(|(_, r)| !r)
        .map(|((index, score), _)| SelectedFeature { index, score })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> (Vec<Vec<f64>>, Vec<i64>) {
        let n = 300;
        let labels: Vec<i64> = (0..n as i64).map(|i| i % 2).collect();
        let sig: Vec<f64> = labels.iter().map(|&l| l as f64).collect();
        let copy = sig.clone();
        let weak: Vec<f64> = labels
            .iter()
            .enumerate()
            .map(|(i, &l)| l as f64 * 2.0 + ((i * 13) % 5) as f64)
            .collect();
        let noise: Vec<f64> = (0..n).map(|i| ((i * 17 + 3) % 11) as f64).collect();
        (vec![sig, copy, weak, noise], labels)
    }

    #[test]
    fn selects_signal_drops_copy_and_noise() {
        let (feats, y) = fixture();
        let sel = fcbf(&feats, &y, 0.0);
        let idx: Vec<usize> = sel.iter().map(|s| s.index).collect();
        assert!(idx.contains(&0), "signal kept: {idx:?}");
        assert!(!idx.contains(&1), "exact copy removed by its Markov blanket");
        assert!(!idx.contains(&3), "noise fails the relevance step");
    }

    #[test]
    fn results_ordered_by_su() {
        let (feats, y) = fixture();
        let sel = fcbf(&feats, &y, 0.0);
        for w in sel.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
        assert!(sel[0].score > 0.9, "perfect predictor has SU ≈ 1");
    }

    #[test]
    fn delta_threshold_prunes_weak_features() {
        let (feats, y) = fixture();
        let strict = fcbf(&feats, &y, 0.9);
        assert!(strict.iter().all(|s| s.score >= 0.9));
        assert!(!strict.is_empty());
    }

    #[test]
    fn empty_features_empty_result() {
        let sel = fcbf(&[], &[0, 1, 0], 0.0);
        assert!(sel.is_empty());
    }

    #[test]
    fn constant_feature_never_selected() {
        let y: Vec<i64> = (0..50).map(|i| i % 2).collect();
        let sel = fcbf(&[vec![3.0; 50]], &y, 0.0);
        assert!(sel.is_empty());
    }

    #[test]
    fn weak_feature_survives_when_not_dominated() {
        // weak carries extra non-label variation; sig does not dominate it
        // unless their mutual SU exceeds weak's label SU.
        let (feats, y) = fixture();
        let sel = fcbf(&feats, &y, 0.0);
        // Either kept or removed is acceptable depending on domination, but
        // the decision must be deterministic.
        let again = fcbf(&feats, &y, 0.0);
        assert_eq!(sel, again);
    }
}
