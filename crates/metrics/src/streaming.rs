//! The streaming feature-selection pipeline (§V-A, §VI): features arrive in
//! batches (one batch per join); each batch passes a relevance analysis
//! (*select-κ-best*) and then a redundancy analysis against the running
//! selected set `R_sel`. The selector owns `R_sel` and hands back, per
//! batch, which features were accepted and the scores Algorithm 2 needs.

use crate::discretize::{discretize_equal_frequency, Discretized};
use crate::redundancy::{RedundancyMethod, RedundancyScorer};
use crate::relevance::{RelevanceMethod, DEFAULT_BINS};
use crate::selection::{select_k_best, select_non_redundant};

/// Outcome of offering one feature batch to the selector.
#[derive(Debug, Clone, Default)]
pub struct BatchOutcome {
    /// Indices (into the offered batch) that survived the relevance
    /// analysis, with their relevance scores, in descending score order.
    pub relevant: Vec<(usize, f64)>,
    /// Indices that additionally survived the redundancy analysis (subset
    /// of `relevant`), with their `J` scores.
    pub selected: Vec<(usize, f64)>,
}

impl BatchOutcome {
    /// The relevance scores of the relevant subset (Algorithm 2 input).
    pub fn relevance_scores(&self) -> Vec<f64> {
        self.relevant.iter().map(|(_, s)| *s).collect()
    }

    /// The `J` scores of the selected subset (Algorithm 2 input).
    pub fn redundancy_scores(&self) -> Vec<f64> {
        self.selected.iter().map(|(_, s)| *s).collect()
    }
}

/// Streaming feature selector with a persistent selected set.
#[derive(Debug, Clone)]
pub struct StreamingSelector {
    relevance: Option<RelevanceMethod>,
    redundancy: Option<RedundancyScorer>,
    kappa: usize,
    labels: Vec<i64>,
    label_codes: Discretized,
    /// `(name, codes)` of every selected feature so far.
    selected: Vec<(String, Discretized)>,
}

impl StreamingSelector {
    /// Build a selector for a fixed label vector.
    ///
    /// `relevance = None` disables the relevance analysis (every feature is
    /// "relevant"); `redundancy = None` disables the redundancy analysis
    /// (every relevant feature is selected) — the Fig. 9 ablation knobs.
    pub fn new(
        labels: Vec<i64>,
        relevance: Option<RelevanceMethod>,
        redundancy: Option<RedundancyMethod>,
        kappa: usize,
    ) -> Self {
        let label_codes = Discretized::from_codes(labels.iter().map(|&l| Some(l)));
        StreamingSelector {
            relevance,
            redundancy: redundancy.map(RedundancyScorer::new),
            kappa,
            labels,
            label_codes,
            selected: Vec::new(),
        }
    }

    /// Number of features selected so far.
    pub fn n_selected(&self) -> usize {
        self.selected.len()
    }

    /// Names of the selected features, in selection order.
    pub fn selected_names(&self) -> Vec<&str> {
        self.selected.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Seed the selected set without selection (the base table's features
    /// enter `R_sel` unconditionally, Algorithm 1's input).
    pub fn seed(&mut self, name: impl Into<String>, values: &[f64]) {
        assert_eq!(values.len(), self.labels.len(), "row count mismatch");
        self.selected.push((
            name.into(),
            discretize_equal_frequency(values, DEFAULT_BINS),
        ));
    }

    /// Offer a batch of `(name, values)` features (one join's new columns).
    /// Accepted features enter `R_sel` immediately (streaming semantics).
    pub fn offer(&mut self, batch: &[(String, Vec<f64>)]) -> BatchOutcome {
        for (_, v) in batch {
            assert_eq!(v.len(), self.labels.len(), "row count mismatch");
        }
        // Relevance analysis.
        let data: Vec<Vec<f64>> = batch.iter().map(|(_, v)| v.clone()).collect();
        let relevant: Vec<(usize, f64)> = match self.relevance {
            Some(method) => select_k_best(&data, &self.labels, method, self.kappa, 0.0)
                .into_iter()
                .map(|s| (s.index, s.score))
                .collect(),
            None => (0..batch.len()).map(|i| (i, 0.0)).collect(),
        };
        // Redundancy analysis against R_sel.
        let codes: Vec<Discretized> = relevant
            .iter()
            .map(|&(i, _)| discretize_equal_frequency(&data[i], DEFAULT_BINS))
            .collect();
        let selected: Vec<(usize, f64)> = match &self.redundancy {
            Some(scorer) => {
                let cands: Vec<(usize, &Discretized)> =
                    codes.iter().enumerate().collect();
                let already: Vec<&Discretized> =
                    self.selected.iter().map(|(_, c)| c).collect();
                select_non_redundant(&cands, &already, &self.label_codes, scorer)
                    .into_iter()
                    .map(|s| (relevant[s.index].0, s.score))
                    .collect()
            }
            None => relevant.clone(),
        };
        // Update R_sel.
        for &(batch_idx, _) in &selected {
            let local = relevant
                .iter()
                .position(|&(i, _)| i == batch_idx)
                .expect("selected came from relevant");
            self.selected
                .push((batch[batch_idx].0.clone(), codes[local].clone()));
        }
        BatchOutcome { relevant, selected }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(n: usize) -> Vec<i64> {
        (0..n as i64).map(|i| i % 2).collect()
    }

    fn signal(n: usize) -> Vec<f64> {
        labels(n).iter().map(|&l| l as f64).collect()
    }

    fn noise(n: usize, seed: usize) -> Vec<f64> {
        (0..n).map(|i| ((i * 31 + seed * 7) % 13) as f64).collect()
    }

    fn selector(n: usize) -> StreamingSelector {
        StreamingSelector::new(
            labels(n),
            Some(RelevanceMethod::Spearman),
            Some(RedundancyMethod::Mrmr),
            5,
        )
    }

    #[test]
    fn accepts_signal_rejects_noise() {
        let n = 200;
        let mut s = selector(n);
        let out = s.offer(&[
            ("sig".into(), signal(n)),
            ("noi".into(), noise(n, 1)),
        ]);
        assert_eq!(out.selected.len(), 1);
        assert_eq!(out.selected[0].0, 0);
        assert_eq!(s.selected_names(), vec!["sig"]);
    }

    #[test]
    fn second_batch_sees_first_selection() {
        let n = 200;
        let mut s = selector(n);
        s.offer(&[("sig".into(), signal(n))]);
        // Offering the same signal again: redundant, rejected.
        let out = s.offer(&[("sig_copy".into(), signal(n))]);
        assert!(out.selected.is_empty(), "duplicate must be redundant: {out:?}");
        assert_eq!(s.n_selected(), 1);
    }

    #[test]
    fn seeded_features_block_duplicates() {
        let n = 150;
        let mut s = selector(n);
        s.seed("base_sig", &signal(n));
        let out = s.offer(&[("copy".into(), signal(n))]);
        assert!(out.selected.is_empty());
    }

    #[test]
    fn kappa_caps_relevant_count() {
        let n = 100;
        let mut s = StreamingSelector::new(
            labels(n),
            Some(RelevanceMethod::Spearman),
            Some(RedundancyMethod::Mrmr),
            2,
        );
        let batch: Vec<(String, Vec<f64>)> = (0..6)
            .map(|j| {
                (
                    format!("f{j}"),
                    signal(n)
                        .iter()
                        .enumerate()
                        .map(|(i, &v)| v + ((i * (j + 3)) % 5) as f64 * 0.1)
                        .collect(),
                )
            })
            .collect();
        let out = s.offer(&batch);
        assert!(out.relevant.len() <= 2);
    }

    #[test]
    fn relevance_off_passes_everything_through() {
        let n = 100;
        let mut s = StreamingSelector::new(labels(n), None, Some(RedundancyMethod::Mrmr), 3);
        let out = s.offer(&[("noi".into(), noise(n, 2)), ("sig".into(), signal(n))]);
        // Both reach redundancy; the signal is selected, noise has J ≈ 0.
        assert_eq!(out.relevant.len(), 2);
        assert!(out.selected.iter().any(|&(i, _)| i == 1));
    }

    #[test]
    fn redundancy_off_keeps_all_relevant() {
        let n = 100;
        let mut s = StreamingSelector::new(labels(n), Some(RelevanceMethod::Spearman), None, 5);
        s.offer(&[("sig".into(), signal(n))]);
        let out = s.offer(&[("copy".into(), signal(n))]);
        assert_eq!(out.selected.len(), 1, "copy kept when redundancy is off");
        assert_eq!(s.n_selected(), 2);
    }

    #[test]
    fn outcome_score_accessors() {
        let n = 100;
        let mut s = selector(n);
        let out = s.offer(&[("sig".into(), signal(n))]);
        assert_eq!(out.relevance_scores().len(), 1);
        assert!(out.relevance_scores()[0] > 0.9);
        assert_eq!(out.redundancy_scores().len(), 1);
        assert!(out.redundancy_scores()[0] > 0.0);
    }

    #[test]
    #[should_panic(expected = "row count mismatch")]
    fn wrong_row_count_panics() {
        let mut s = selector(10);
        s.offer(&[("x".into(), vec![1.0; 5])]);
    }
}
