//! Shannon entropy over discretized features.
//!
//! All estimators skip rows where any involved feature is missing (pairwise
//! deletion) and use natural-log entropy internally, reported in **bits**.

use crate::discretize::Discretized;

const LN_2: f64 = std::f64::consts::LN_2;

fn h_from_counts(counts: impl IntoIterator<Item = usize>, total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let n = total as f64;
    let mut h = 0.0;
    for c in counts {
        if c > 0 {
            let p = c as f64 / n;
            h -= p * p.ln();
        }
    }
    h / LN_2
}

/// Shannon entropy `H(X)` in bits, over the non-missing rows.
pub fn entropy(x: &Discretized) -> f64 {
    let mut counts = vec![0usize; x.n_bins as usize];
    let mut total = 0usize;
    for c in x.codes.iter().flatten() {
        counts[*c as usize] += 1;
        total += 1;
    }
    h_from_counts(counts, total)
}

/// Joint entropy `H(X, Y)` in bits, over rows where both are present.
pub fn joint_entropy(x: &Discretized, y: &Discretized) -> f64 {
    assert_eq!(x.codes.len(), y.codes.len(), "feature length mismatch");
    let nx = x.n_bins as usize;
    let ny = y.n_bins as usize;
    let mut counts = vec![0usize; nx * ny];
    let mut total = 0usize;
    for (cx, cy) in x.codes.iter().zip(&y.codes) {
        if let (Some(a), Some(b)) = (cx, cy) {
            counts[*a as usize * ny + *b as usize] += 1;
            total += 1;
        }
    }
    h_from_counts(counts, total)
}

/// Conditional entropy `H(X | Y) = H(X, Y) − H(Y)`, computed over the rows
/// where both features are present (so the identity holds exactly).
pub fn conditional_entropy(x: &Discretized, y: &Discretized) -> f64 {
    assert_eq!(x.codes.len(), y.codes.len(), "feature length mismatch");
    // One pass fills both tables; H(Y) is computed over the *joint* support
    // so the identity holds exactly. (Previously this materialised the list
    // of jointly-present row indices and re-scanned the rows twice.)
    let ny = y.n_bins as usize;
    let mut joint = vec![0usize; x.n_bins as usize * ny];
    let mut y_counts = vec![0usize; ny];
    let mut total = 0usize;
    for (cx, cy) in x.codes.iter().zip(&y.codes) {
        if let (Some(a), Some(b)) = (cx, cy) {
            joint[*a as usize * ny + *b as usize] += 1;
            y_counts[*b as usize] += 1;
            total += 1;
        }
    }
    let h_y = h_from_counts(y_counts, total);
    h_from_counts(joint, total) - h_y
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discretize::Discretized;

    fn d(codes: &[i64]) -> Discretized {
        Discretized::from_codes(codes.iter().map(|&c| Some(c)))
    }

    #[test]
    fn uniform_binary_is_one_bit() {
        let x = d(&[0, 1, 0, 1]);
        assert!((entropy(&x) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_is_zero() {
        assert_eq!(entropy(&d(&[3, 3, 3])), 0.0);
    }

    #[test]
    fn uniform_four_way_is_two_bits() {
        assert!((entropy(&d(&[0, 1, 2, 3])) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn missing_rows_are_skipped() {
        let x = Discretized::from_codes([Some(0), Some(1), None, None]);
        assert!((entropy(&x) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn joint_of_identical_equals_marginal() {
        let x = d(&[0, 1, 0, 1, 1]);
        assert!((joint_entropy(&x, &x) - entropy(&x)).abs() < 1e-12);
    }

    #[test]
    fn joint_of_independent_sums() {
        // x and y each uniform binary and independent (all 4 combos).
        let x = d(&[0, 0, 1, 1]);
        let y = d(&[0, 1, 0, 1]);
        assert!((joint_entropy(&x, &y) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn conditional_entropy_identity() {
        let x = d(&[0, 0, 1, 1, 2, 2]);
        let y = d(&[0, 1, 0, 1, 0, 1]);
        let lhs = conditional_entropy(&x, &y);
        let rhs = joint_entropy(&x, &y) - entropy(&y);
        assert!((lhs - rhs).abs() < 1e-12);
    }

    #[test]
    fn conditional_entropy_of_function_is_zero() {
        // x = f(y) ⇒ H(x|y) = 0
        let y = d(&[0, 1, 2, 0, 1, 2]);
        let x = d(&[0, 1, 0, 0, 1, 0]); // x = y mod 2
        assert!(conditional_entropy(&x, &y).abs() < 1e-12);
    }

    #[test]
    fn empty_support_is_zero() {
        let x = Discretized::from_codes([None, None]);
        assert_eq!(entropy(&x), 0.0);
        assert_eq!(joint_entropy(&x, &x), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        let x = d(&[0, 1]);
        let y = d(&[0, 1, 2]);
        joint_entropy(&x, &y);
    }
}
