//! Offline stand-in for the subset of the `proptest` crate API used by this
//! workspace (the build environment has no access to crates.io).
//!
//! A miniature property-testing harness: [`Strategy`] implementations for
//! numeric ranges, tuples, and collections; the [`proptest!`] macro running
//! each property over [`CASES`] deterministic random cases; and
//! `prop_assert!`/`prop_assert_eq!` reporting failures with the case number.
//! No shrinking — a failing case prints its inputs via the assertion message
//! and the deterministic seed makes reruns exact.

// Offline vendored stub: exempt from the workspace clippy gate.
#![allow(clippy::all)]

use std::ops::Range;

/// Number of random cases each property is executed with.
pub const CASES: usize = 64;

/// Deterministic case generator (SplitMix64 keyed by the test name).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator whose stream is a pure function of `name`.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the test name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn below(&mut self, n: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }
}

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let width = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(width) as i128) as $t
            }
        }
    )*};
}

int_strategy!(usize, u64, u32, i64, i32, i16, u16);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let v = self.start + rng.next_f64() * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng), self.2.generate(rng))
    }
}

/// Strategy combinators, addressed as `prop::collection::…` like upstream.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::collections::HashSet;
        use std::hash::Hash;
        use std::ops::Range;

        /// A strategy producing `Vec`s with lengths drawn from `size`.
        pub struct VecStrategy<S> {
            elem: S,
            size: Range<usize>,
        }

        /// `Vec` of values from `elem`, length in `size`.
        pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { elem, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let len = self.size.clone().generate(rng);
                (0..len).map(|_| self.elem.generate(rng)).collect()
            }
        }

        /// A strategy producing `HashSet`s with target sizes from `size`.
        pub struct HashSetStrategy<S> {
            elem: S,
            size: Range<usize>,
        }

        /// `HashSet` of values from `elem`, size in `size` (best-effort when
        /// the element domain is small).
        pub fn hash_set<S>(elem: S, size: Range<usize>) -> HashSetStrategy<S>
        where
            S: Strategy,
            S::Value: Eq + Hash,
        {
            HashSetStrategy { elem, size }
        }

        impl<S> Strategy for HashSetStrategy<S>
        where
            S: Strategy,
            S::Value: Eq + Hash,
        {
            type Value = HashSet<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let target = self.size.clone().generate(rng).max(self.size.start).max(1);
                let mut out = HashSet::new();
                let mut attempts = 0usize;
                while out.len() < target && attempts < target.saturating_mul(20) + 100 {
                    out.insert(self.elem.generate(rng));
                    attempts += 1;
                }
                out
            }
        }
    }
}

/// Glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{prop_assert, prop_assert_eq, proptest, Strategy};
}

/// Run each property over [`CASES`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::TestRng::deterministic(stringify!($name));
                for __case in 0..$crate::CASES {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                    let __outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(__msg) = __outcome {
                        panic!("property `{}` failed on case {}/{}: {}",
                               stringify!($name), __case + 1, $crate::CASES, __msg);
                    }
                }
            }
        )*
    };
}

/// `assert!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// `assert_eq!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), __l, __r));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, y in -5i64..5) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-5..5).contains(&y));
        }

        #[test]
        fn vec_lengths_respected(v in prop::collection::vec(0i64..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6, "len {}", v.len());
            prop_assert!(v.iter().all(|&x| (0..10).contains(&x)));
        }

        #[test]
        fn hash_sets_are_distinct(s in prop::collection::hash_set(-50i64..50, 1..20)) {
            prop_assert!(!s.is_empty());
        }

        #[test]
        fn tuples_generate(p in (0.0f64..1.0, 0u64..4)) {
            prop_assert!(p.0 < 1.0);
            prop_assert!(p.1 < 4);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = super::TestRng::deterministic("x");
        let mut b = super::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
