//! Offline stand-in for the subset of the `criterion` crate API used by this
//! workspace's benches (the build environment has no access to crates.io).
//!
//! Each `bench_function`/`bench_with_input` call times its routine over a
//! small fixed number of iterations and prints a mean per-iteration wall
//! time. No statistical analysis, warm-up calibration, or HTML reports —
//! just enough to keep `cargo bench` runnable and comparable run-to-run.

// Offline vendored stub: exempt from the workspace clippy gate.
#![allow(clippy::all)]

use std::fmt::Display;
use std::time::Instant;

/// Iterations measured per benchmark (after one warm-up iteration).
const MEASURE_ITERS: u32 = 10;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// A named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), _parent: self }
    }

    /// Time a standalone routine.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, &mut f);
        self
    }
}

/// A named benchmark group.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub's iteration count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Time a routine under `{group}/{id}`.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), &mut f);
        self
    }

    /// Time a routine parameterized by `input` under `{group}/{id}`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        let mut wrapped = |b: &mut Bencher| f(b, input);
        run_one(&label, &mut wrapped);
        self
    }

    /// End the group (no-op in the stub).
    pub fn finish(self) {}
}

/// A benchmark identifier: `function_name/parameter`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Compose an id from a function name and a parameter value.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// Handed to benchmark closures; `iter` does the timing.
pub struct Bencher {
    total_nanos: u128,
    iters: u32,
}

impl Bencher {
    /// Time `routine` over a fixed number of iterations.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut routine: F) {
        // One warm-up iteration outside the measurement.
        std::hint::black_box(routine());
        let t0 = Instant::now();
        for _ in 0..MEASURE_ITERS {
            std::hint::black_box(routine());
        }
        self.total_nanos = t0.elapsed().as_nanos();
        self.iters = MEASURE_ITERS;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, f: &mut F) {
    let mut b = Bencher { total_nanos: 0, iters: 0 };
    f(&mut b);
    if b.iters > 0 {
        let mean = b.total_nanos / u128::from(b.iters);
        println!("bench {label:<48} {:>12.3} µs/iter", mean as f64 / 1_000.0);
    }
}

/// Collect benchmark functions into a single runnable entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generate `main` for a bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        c.bench_function("t", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("f", 3), &3usize, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }
}
