//! Offline stand-in for the subset of the `rand` crate API used by this
//! workspace (the build environment has no access to crates.io).
//!
//! Provides [`rngs::StdRng`] (xoshiro256** seeded via SplitMix64),
//! [`SeedableRng::seed_from_u64`], [`RngExt::random_range`] over integer and
//! float ranges, and [`seq::SliceRandom::shuffle`]. All generators are fully
//! deterministic per seed, which is what the reproduction's experiments
//! rely on.

// Offline vendored stub: exempt from the workspace clippy gate.
#![allow(clippy::all)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform draw from `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        // 53 mantissa bits scaled by 2^-53.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Seedable construction (only the `seed_from_u64` entry point is needed).
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Standard-quality deterministic generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256** — small, fast, and statistically solid; a stand-in for
    /// rand's `StdRng` with identical ergonomics (but a different stream).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// A range that a uniform value can be drawn from.
pub trait SampleRange<T> {
    /// Draw one uniform value; panics on an empty range (mirroring rand).
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform draw from `[0, n)` without noticeable bias (Lemire reduction).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    ((u128::from(rng.next_u64()) * u128::from(n)) >> 64) as u64
}

macro_rules! int_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(
                    self.start < self.end,
                    "cannot sample empty range {:?}..{:?}", self.start, self.end
                );
                let width = (self.end as i128 - self.start as i128) as u64;
                let off = uniform_u64(rng, width);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range {lo:?}..={hi:?}");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                if width > u128::from(u64::MAX) {
                    // Full-domain draw.
                    return rng.next_u64() as $t;
                }
                let off = uniform_u64(rng, width as u64);
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_range_impl!(usize, u64, u32, i64, i32);

macro_rules! float_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(
                    self.start < self.end,
                    "cannot sample empty range {:?}..{:?}", self.start, self.end
                );
                let unit = rng.next_f64() as $t;
                let v = self.start + unit * (self.end - self.start);
                // Guard against rounding onto the open upper bound.
                if v >= self.end { self.start } else { v }
            }
        }
    )*};
}

float_range_impl!(f64, f32);

/// Ergonomic draws on top of any [`RngCore`] (rand 0.9+ naming).
pub trait RngExt: RngCore {
    /// Uniform draw from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// A uniform `f64` in `[0, 1)`.
    fn random(&mut self) -> f64 {
        self.next_f64()
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Sequence helpers.
pub mod seq {
    use super::{uniform_u64, RngCore};

    /// In-place slice shuffling.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_u64(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0..1_000_000u64), b.random_range(0..1_000_000u64));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.random_range(0..u64::MAX - 1)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random_range(0..u64::MAX - 1)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.random_range(5..17usize);
            assert!((5..17).contains(&v));
            let w = rng.random_range(-4i64..4);
            assert!((-4..4).contains(&w));
            let f = rng.random_range(0.25..0.5f64);
            assert!((0.25..0.5).contains(&f));
            let inc = rng.random_range(0..=3usize);
            assert!(inc <= 3);
        }
    }

    #[test]
    fn int_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.random_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle left the slice untouched");
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits}");
    }
}
