//! Offline stand-in for the subset of the `crossbeam` crate API used by this
//! workspace (the build environment has no access to crates.io).
//!
//! Only `crossbeam::thread::scope` is provided, implemented on top of
//! `std::thread::scope` with crossbeam's `Result`-returning panic contract.

// Offline vendored stub: exempt from the workspace clippy gate.
#![allow(clippy::all)]

/// Scoped threads with crossbeam's error-carrying API.
pub mod thread {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// A scope handle; spawned threads may borrow from the enclosing stack
    /// frame and are all joined before `scope` returns.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a worker inside the scope. The closure receives a unit
        /// placeholder where crossbeam passes a nested scope handle (the
        /// workspace only ever ignores it).
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(()) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            self.inner.spawn(move || f(()))
        }
    }

    /// Run `f` with a scope handle; returns `Err` with the panic payload if
    /// any spawned thread (or `f` itself) panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: FnOnce(&Scope<'_, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn scoped_threads_borrow_and_join() {
        let mut slots = vec![0usize; 16];
        thread::scope(|s| {
            for (i, chunk) in slots.chunks_mut(4).enumerate() {
                s.spawn(move |_| {
                    for (off, slot) in chunk.iter_mut().enumerate() {
                        *slot = i * 4 + off;
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(slots, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn panics_surface_as_err() {
        let r = thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
