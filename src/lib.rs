//! # autofeat
//!
//! A Rust implementation of **AutoFeat: Transitive Feature Discovery over
//! Join Paths** (Ionescu et al., ICDE 2024), together with every substrate
//! its evaluation depends on.
//!
//! Given a *base table* with a classification label sitting in a collection
//! of datasets (a curated warehouse or a messy data lake), AutoFeat finds
//! **multi-hop join paths** that lead to features with high predictive
//! power — without training a model per candidate join. Paths are pruned by
//! join-column similarity and data quality (τ), and ranked by cheap
//! information-theoretic **relevance** (Spearman) and **redundancy** (MRMR)
//! scores; only the top-k ranked paths are ever materialized and trained.
//!
//! ## Crate map
//!
//! | module | contents |
//! |---|---|
//! | [`data`] | columnar table engine: typed null-aware columns, CSV, normalized left joins, sampling, imputation, encoding |
//! | [`discovery`] | schema/instance matcher (COMA stand-in) for the data-lake setting |
//! | [`graph`] | the Dataset Relation Graph multigraph, BFS, path enumeration, Eq. 3 |
//! | [`metrics`] | entropy/MI, the 5 relevance measures, the 5 redundancy criteria |
//! | [`ml`] | decision trees, Random Forest, Extra-Trees, GBDT (×2 presets), KNN, logistic-L1 |
//! | [`core`] | Algorithm 1 & 2, the streaming selection pipeline, baselines (BASE/ARDA/MAB/JoinAll) |
//! | [`obs`] | run tracing: per-phase spans, pipeline counters, machine-readable run traces |
//! | [`datagen`] | synthetic ground-truth lakes replicating the paper's evaluation corpus |
//!
//! ## Quickstart
//!
//! ```
//! use autofeat::prelude::*;
//!
//! // A toy lake: the base table and one joinable satellite.
//! let base = Table::new("base", vec![
//!     ("customer_id", Column::from_ints((0..100).map(Some).collect::<Vec<_>>())),
//!     ("target", Column::from_ints((0..100).map(|i| Some(i % 2)).collect::<Vec<_>>())),
//! ]).unwrap();
//! let profile = Table::new("profile", vec![
//!     ("customer_id", Column::from_ints((0..100).map(Some).collect::<Vec<_>>())),
//!     ("score", Column::from_floats((0..100).map(|i| Some((i % 2) as f64)).collect::<Vec<_>>())),
//! ]).unwrap();
//!
//! // Benchmark setting: the KFK edge is known.
//! let ctx = SearchContext::from_kfk(
//!     vec![base, profile],
//!     &[("base".into(), "customer_id".into(), "profile".into(), "customer_id".into())],
//!     "base",
//!     "target",
//! ).unwrap();
//!
//! let result = AutoFeat::paper().discover(&ctx).unwrap();
//! assert_eq!(result.ranked.len(), 1);
//! assert!(result.ranked[0].features.iter().any(|f| f == "profile.score"));
//! ```

pub use autofeat_core as core;
pub use autofeat_data as data;
pub use autofeat_datagen as datagen;
pub use autofeat_discovery as discovery;
pub use autofeat_graph as graph;
pub use autofeat_metrics as metrics;
pub use autofeat_ml as ml;
pub use autofeat_obs as obs;

/// The most common imports in one place.
pub mod prelude {
    pub use autofeat_core::{
        baselines::{run_arda, run_base, run_join_all, run_mab, ArdaConfig, JoinAllConfig, MabConfig},
        discovery_health_report, load_lake_dir, train_top_k, AutoFeat, AutoFeatConfig,
        DegradeConfig, DiscoveryRequest, DiscoveryResult, DiscoveryService, LakeLoadReport,
        MethodResult, PathFailure, Phase, PreparedRequest, QuarantinedTable, RankedPath,
        RequestLogRecord, RequestOutcome, ResilienceStats, SearchContext, ServiceStats,
        TrainOutcome, TruncationReason, REQUEST_LOG_CAP,
    };
    pub use autofeat_data::{
        CacheRecorder, CacheStats, Column, DType, FaultDomain, Interrupt, KeyDict,
        LakeIndexCache, RunControl, Table, Value,
    };
    pub use autofeat_discovery::{MatcherConfig, SchemaMatcher};
    pub use autofeat_graph::{Drg, DrgBuilder, JoinPath};
    pub use autofeat_metrics::{RedundancyMethod, RelevanceMethod};
    pub use autofeat_ml::eval::ModelKind;
    pub use autofeat_obs::{RunTrace, Tracer};
}

/// Build a [`core::SearchContext`] straight from a datagen snowflake
/// (benchmark setting).
pub fn context_from_snowflake(
    sf: &datagen::Snowflake,
) -> data::Result<core::SearchContext> {
    let tables: Vec<data::Table> = sf.all_tables().into_iter().cloned().collect();
    let kfk: Vec<(String, String, String, String)> = sf
        .kfk
        .iter()
        .map(|e| {
            (
                e.parent_table.clone(),
                e.parent_column.clone(),
                e.child_table.clone(),
                e.child_column.clone(),
            )
        })
        .collect();
    core::SearchContext::from_kfk(tables, &kfk, sf.base.name().to_string(), sf.label.clone())
}

/// Build a [`core::SearchContext`] from a datagen lake by running dataset
/// discovery (data-lake setting).
pub fn context_from_lake(
    lake: &datagen::lake::Lake,
    matcher: &discovery::SchemaMatcher,
) -> data::Result<core::SearchContext> {
    core::SearchContext::from_discovery(
        lake.tables.clone(),
        matcher,
        lake.base_name.clone(),
        lake.label.clone(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{GroundTruthConfig, SnowflakeConfig};

    #[test]
    fn snowflake_context_roundtrip() {
        let gt = datagen::generator::generate(&GroundTruthConfig {
            n_rows: 120,
            ..Default::default()
        });
        let sf = datagen::splitter::split(&gt, &SnowflakeConfig::default());
        let ctx = context_from_snowflake(&sf).unwrap();
        assert_eq!(ctx.n_tables(), 6);
        assert_eq!(ctx.drg().n_edges(), 5);
    }

    #[test]
    fn lake_context_roundtrip() {
        let gt = datagen::generator::generate(&GroundTruthConfig {
            n_rows: 120,
            ..Default::default()
        });
        let sf = datagen::splitter::split(&gt, &SnowflakeConfig::default());
        let lake = datagen::lake::corrupt_to_lake(&sf, &datagen::LakeConfig::default());
        let ctx = context_from_lake(&lake, &discovery::SchemaMatcher::paper_default()).unwrap();
        assert_eq!(ctx.n_tables(), 6);
        assert!(ctx.drg().n_edges() >= 5, "discovery should reconnect the lake");
    }
}
